//! The integrity layer of the read path: checksum verification at cache
//! fill, read-repair through replica rotation, block poisoning, the
//! idle-time scrubber's repair chains, and quarantine-aware steering.
//!
//! None of this runs unless the configuration schedules corrupt windows,
//! forces verification, or enables the scrubber — the default read path
//! delivers fills exactly as before.

use rt_fs::FsCompleted;

use super::*;
use crate::integrity::IntegrityError;

/// Resolution of a finished checksum check, computed under a scoped
/// borrow of the integrity state (the actions need `&mut self` again).
enum Checked {
    /// The payload is clean: rewrite the listed corrupt replicas and
    /// deliver the block.
    Deliver { rewrite: Vec<u16>, who: ProcId },
    /// The payload is corrupt; re-fetch from the next rotated replica.
    Refetch { replica: u16, who: ProcId },
    /// A corrupt speculative fill nobody waits on: drop it.
    Drop,
    /// Every copy returned corrupt; poison the block.
    Poison,
}

impl World {
    /// An `Ok` demand/prefetch fill completed with verification active:
    /// hold the buffer pending while the checksum is computed. The block
    /// becomes readable only if the check clears.
    pub(super) fn verify_fill(
        &mut self,
        done: &FsCompleted,
        disk: DiskId,
        sched: &mut Scheduler<Ev>,
    ) {
        let now = sched.now();
        let block = done.block;
        let Some(buf) = self.pool.buffer_for(block) else {
            // A redirected duplicate completed after the block was
            // delivered and evicted (or poisoned and discarded).
            self.rec.stale_completions += 1;
            return;
        };
        if matches!(
            self.pool.buffer(buf).state,
            rt_cache::BufState::Ready { .. }
        ) {
            // A duplicate already delivered the block (verified).
            self.rec.stale_completions += 1;
            return;
        }
        let replica = self.replica_for_disk(block, disk);
        let verify_cost = {
            let ig = self
                .integrity
                .as_mut()
                .expect("verification without an integrity layer");
            match ig.verifying.get_mut(&block) {
                Some(st) if st.checking.is_some() => {
                    // A concurrent check owns delivery; drop the duplicate.
                    self.rec.stale_completions += 1;
                    return;
                }
                Some(st) => {
                    // The replica re-fetch landed: check this payload.
                    st.checking = Some(done.corrupt);
                    st.replica = replica;
                }
                None => {
                    ig.verifying.insert(
                        block,
                        VerifyState {
                            checking: Some(done.corrupt),
                            replica,
                            tried: 0,
                            corrupt_replicas: Vec::new(),
                            kind: done.kind,
                            who: done.initiator,
                        },
                    );
                }
            }
            ig.cfg.verify_cost
        };
        self.pool.set_ready_at(buf, now + verify_cost);
        self.obs_instant(
            Track::Device(disk.0),
            ObsKind::VerifyHold,
            now,
            block.index() as u64,
            verify_cost.as_nanos(),
        );
        sched.schedule_in(verify_cost, Ev::VerifyDone(block));
    }

    /// A fill's checksum check finished: deliver a clean block (rewriting
    /// any corrupt replicas found on the way), rotate to the next replica
    /// on detection, or poison the block when every copy was corrupt.
    pub(super) fn verify_done(&mut self, block: BlockId, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let pending = self.pool.buffer_for(block).is_some_and(|b| {
            matches!(
                self.pool.buffer(b).state,
                rt_cache::BufState::Pending { .. }
            )
        });
        if !pending {
            // The fill was discarded while the check ran (e.g. a duplicate
            // error completion dropped a speculative prefetch).
            if let Some(ig) = &mut self.integrity {
                ig.verifying.remove(&block);
            }
            self.clear_pending(block, sched);
            return;
        }
        let copies = 1 + self.fs.replica_count(self.file);
        let file = self.file;
        // The replica that served the payload under check, captured for
        // the corrupt-detection event (emitted after the scoped borrow).
        let mut corrupt_on = None;
        let next = {
            let Some(ig) = &mut self.integrity else {
                return;
            };
            let Some(mut st) = ig.verifying.remove(&block) else {
                return;
            };
            let Some(corrupt) = st.checking.take() else {
                // Spurious wake-up: a re-fetch is in flight.
                ig.verifying.insert(block, st);
                return;
            };
            // Feed the quarantine EWMA of the device that served it.
            if let (Some(f), Some(d)) = (
                self.faults.as_mut(),
                self.fs.placement_disk(file, block, st.replica),
            ) {
                f.health.observe_corruption(d, corrupt, now);
            }
            if !corrupt {
                if st.tried > 0 {
                    // A rotated replica delivered clean: a read-repair.
                    ig.repairs += 1;
                }
                Checked::Deliver {
                    rewrite: st.corrupt_replicas,
                    who: st.who,
                }
            } else {
                ig.corruptions += 1;
                ig.detections += 1;
                corrupt_on = Some(st.replica);
                st.corrupt_replicas.push(st.replica);
                st.tried += 1;
                if st.tried >= copies {
                    Checked::Poison
                } else if st.kind == FetchKind::Prefetch && !self.waiters.has_waiters(block) {
                    // Nobody wants the block yet: drop the corrupt
                    // speculative fill rather than spend repair traffic
                    // on it — a later demand read re-verifies anyway.
                    Checked::Drop
                } else {
                    st.replica = (st.replica + 1) % copies;
                    let replica = st.replica;
                    let who = st.who;
                    ig.verifying.insert(block, st);
                    Checked::Refetch { replica, who }
                }
            }
        };
        if self.obs.is_some() {
            if let Some(r) = corrupt_on {
                if let Some(d) = self.fs.placement_disk(file, block, r) {
                    self.obs_instant(
                        Track::Device(d.0),
                        ObsKind::CorruptDetected,
                        now,
                        block.index() as u64,
                        r as u64,
                    );
                }
            }
        }
        match next {
            Checked::Deliver { rewrite, who } => {
                for r in rewrite {
                    self.issue_repair(block, r, who, sched);
                }
                self.block_ready(block, sched);
            }
            Checked::Refetch { replica, who } => {
                let buf = self
                    .pool
                    .buffer_for(block)
                    .expect("pending buffer checked above");
                // The ready estimate is void until the re-fetch starts.
                self.pool.set_ready_at(buf, SimTime::MAX);
                // Waiters leave the verify hold and back off with the
                // re-fetch until it enters service.
                self.attr_fetch_stage(block, now, Component::RetryBackoff);
                let (started, parked) = self.submit_demand(now, block, replica, who);
                self.note_started(block, started, sched);
                if !parked {
                    self.arm_timeout(block, who, sched);
                }
            }
            Checked::Drop => {
                let buf = self
                    .pool
                    .buffer_for(block)
                    .expect("pending buffer checked above");
                self.pool.discard_pending(buf);
                self.rec
                    .tl_prefetched
                    .record(now, self.pool.prefetched_unused() as f64);
                self.rec.aborted_prefetches += 1;
                self.clear_pending(block, sched);
            }
            Checked::Poison => self.poison_block(block, sched),
        }
    }

    /// Every copy of `block` returned a corrupt payload: mark it poisoned,
    /// discard the pending fill, and fail every waiter with a typed
    /// [`IntegrityError`] — never a corrupt payload, never a panic.
    pub(super) fn poison_block(&mut self, block: BlockId, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        if self.obs.is_some() {
            if let Some(d) = self.fs.placement_disk(self.file, block, 0) {
                self.obs_instant(
                    Track::Device(d.0),
                    ObsKind::Poison,
                    now,
                    block.index() as u64,
                    0,
                );
            }
        }
        {
            let ig = self
                .integrity
                .as_mut()
                .expect("poison without an integrity layer");
            ig.poisoned.insert(block);
            ig.verifying.remove(&block);
        }
        if let Some(buf) = self.pool.buffer_for(block) {
            if matches!(
                self.pool.buffer(buf).state,
                rt_cache::BufState::Pending { .. }
            ) {
                self.pool.discard_pending(buf);
                self.rec
                    .tl_prefetched
                    .record(now, self.pool.prefetched_unused() as f64);
            }
        }
        self.clear_pending(block, sched);
        let mut woken = std::mem::take(&mut self.wake_scratch);
        self.waiters.drain_into(block, &mut woken);
        for &w in &woken {
            self.integrity
                .as_mut()
                .expect("poison without an integrity layer")
                .read_errors[w.index()] = Some(IntegrityError { block });
            self.procs[w.index()].logical_wake = Some(now);
            self.wake(w.index(), sched);
        }
        woken.clear();
        self.wake_scratch = woken;
    }

    /// Write a clean payload back over the corrupt copy on `replica`.
    /// Modeled as a device request occupying the target disk; the rewrite
    /// is dropped (not retried) if the device's queue is full — the copy
    /// stays bad and a later scrub pass gets another chance.
    pub(super) fn issue_repair(
        &mut self,
        block: BlockId,
        replica: u16,
        who: ProcId,
        sched: &mut Scheduler<Ev>,
    ) {
        let now = sched.now();
        match self
            .fs
            .read_replica(now, self.file, block, replica, FetchKind::Repair, who)
        {
            Ok(started) => {
                self.outstanding_io += 1;
                self.rec
                    .tl_outstanding_io
                    .record(now, self.outstanding_io as f64);
                if self.obs.is_some() {
                    if let Some(d) = self.fs.placement_disk(self.file, block, replica) {
                        self.obs_instant(
                            Track::Device(d.0),
                            ObsKind::Repair,
                            now,
                            block.index() as u64,
                            replica as u64,
                        );
                    }
                }
                if let Some(s) = started {
                    sched.schedule_at(s.completion, Ev::DiskDone(s.disk));
                }
            }
            Err(FsError::QueueFull { .. }) => {}
            Err(e) => panic!("repair write of an in-range block rejected: {e:?}"),
        }
    }

    /// A repair write completed. The corrupt flag is meaningless on a
    /// write; only the outcome is recorded.
    pub(super) fn repair_done(&mut self, done: &FsCompleted) {
        match done.status {
            Ok(()) => {
                if let Some(ig) = &mut self.integrity {
                    ig.rewrites += 1;
                }
            }
            Err(_) => self.rec.io_errors += 1,
        }
    }

    /// Try to issue one scrub read on node `p`'s daemon slot: walk the
    /// node's stride of the file for a block that is not cached, not
    /// poisoned, not already being checked, and not behind a quarantined
    /// device. Returns whether a read was issued.
    pub(super) fn scrub_attempt(&mut self, p: usize, sched: &mut Scheduler<Ev>) -> bool {
        let now = sched.now();
        let blocks = self.cfg.workload.file_blocks;
        let stride = self.cfg.procs as u32;
        let copies = 1 + self.fs.replica_count(self.file);
        let (mut cursor, mut replica) = {
            let Some(ig) = &self.integrity else {
                return false;
            };
            if !ig.cfg.scrub || blocks == 0 {
                return false;
            }
            let s = &ig.scrub[p];
            if s.inflight || now.saturating_since(s.last_issued) < ig.cfg.scrub_interval {
                return false;
            }
            (s.cursor, s.replica)
        };
        let mut candidate = None;
        // One pass over this node's share of the file, at most.
        for _ in 0..=blocks.div_ceil(stride.max(1)) {
            let block = BlockId(cursor);
            let r = replica;
            cursor += stride;
            if cursor >= blocks {
                cursor = p as u32;
                replica = (replica + 1) % copies;
            }
            if block.0 >= blocks {
                continue;
            }
            let ig = self.integrity.as_ref().expect("checked above");
            if self.pool.contains(block)
                || ig.poisoned.contains(&block)
                || ig.scrub_checks.contains_key(&block)
            {
                continue;
            }
            // Skip copies the health tracker says to avoid: quarantined
            // devices and open breakers alike (shared replica-health
            // notion — see `healthy_replica`).
            let avoided = self.faults.as_ref().is_some_and(|f| {
                self.fs
                    .placement_disk(self.file, block, r)
                    .is_some_and(|d| f.health.avoid(d, now))
            });
            if avoided {
                continue;
            }
            candidate = Some((block, r));
            break;
        }
        let ig = self.integrity.as_mut().expect("checked above");
        let Some((block, r)) = candidate else {
            // Nothing scrubbable this pass; remember where we stopped.
            let s = &mut ig.scrub[p];
            s.cursor = cursor;
            s.replica = replica;
            return false;
        };
        match self
            .fs
            .read_replica(now, self.file, block, r, FetchKind::Scrub, ProcId(p as u16))
        {
            Ok(started) => {
                ig.scrub_checks.insert(
                    block,
                    ScrubCheck {
                        replica: r,
                        tried: 0,
                        corrupt_replicas: Vec::new(),
                    },
                );
                let s = &mut ig.scrub[p];
                s.cursor = cursor;
                s.replica = replica;
                s.inflight = true;
                s.last_issued = now;
                self.outstanding_io += 1;
                self.rec
                    .tl_outstanding_io
                    .record(now, self.outstanding_io as f64);
                if self.obs.is_some() {
                    if let Some(d) = self.fs.placement_disk(self.file, block, r) {
                        self.obs_instant(
                            Track::Device(d.0),
                            ObsKind::Scrub,
                            now,
                            block.index() as u64,
                            r as u64,
                        );
                    }
                }
                if let Some(s) = started {
                    sched.schedule_at(s.completion, Ev::DiskDone(s.disk));
                }
                true
            }
            // The device is busy with real work; leave the cursor so the
            // block is retried on a later action.
            Err(FsError::QueueFull { .. }) => false,
            Err(e) => panic!("scrub read of an in-range block rejected: {e:?}"),
        }
    }

    /// A scrub read completed: verify the payload, rotate across replicas
    /// hunting for a clean copy when it is corrupt, rewrite the bad
    /// copies once one is found, and poison the block when there is none.
    pub(super) fn scrub_done(
        &mut self,
        done: &FsCompleted,
        disk: DiskId,
        sched: &mut Scheduler<Ev>,
    ) {
        let now = sched.now();
        let block = done.block;
        let p = done.initiator;
        let copies = 1 + self.fs.replica_count(self.file);

        enum Next {
            Repair { rewrite: Vec<u16> },
            Rotate { replica: u16 },
            Poison,
        }
        let mut corrupt_on = None;
        let next = {
            let Some(ig) = &mut self.integrity else {
                return;
            };
            let Some(mut chk) = ig.scrub_checks.remove(&block) else {
                return;
            };
            match done.status {
                Err(_) => {
                    // The scrub read itself failed (an overlapping fault
                    // window): drop the chain — the next pass retries.
                    self.rec.io_errors += 1;
                    ig.scrub[p.index()].inflight = false;
                    return;
                }
                Ok(()) => {
                    ig.scrubbed += 1;
                    if let Some(f) = self.faults.as_mut() {
                        f.health.observe_corruption(disk, done.corrupt, now);
                    }
                    if !done.corrupt {
                        ig.scrub[p.index()].inflight = false;
                        Next::Repair {
                            rewrite: chk.corrupt_replicas,
                        }
                    } else {
                        ig.corruptions += 1;
                        ig.scrub_detections += 1;
                        corrupt_on = Some(chk.replica);
                        chk.corrupt_replicas.push(chk.replica);
                        chk.tried += 1;
                        if chk.tried >= copies {
                            ig.scrub[p.index()].inflight = false;
                            Next::Poison
                        } else {
                            chk.replica = (chk.replica + 1) % copies;
                            let replica = chk.replica;
                            ig.scrub_checks.insert(block, chk);
                            Next::Rotate { replica }
                        }
                    }
                }
            }
        };
        if self.obs.is_some() {
            if let Some(r) = corrupt_on {
                if let Some(d) = self.fs.placement_disk(self.file, block, r) {
                    self.obs_instant(
                        Track::Device(d.0),
                        ObsKind::CorruptDetected,
                        now,
                        block.index() as u64,
                        r as u64,
                    );
                }
            }
        }
        match next {
            Next::Repair { rewrite } => {
                for r in rewrite {
                    self.issue_repair(block, r, p, sched);
                }
            }
            Next::Rotate { replica } => {
                match self
                    .fs
                    .read_replica(now, self.file, block, replica, FetchKind::Scrub, p)
                {
                    Ok(started) => {
                        self.outstanding_io += 1;
                        self.rec
                            .tl_outstanding_io
                            .record(now, self.outstanding_io as f64);
                        if let Some(s) = started {
                            sched.schedule_at(s.completion, Ev::DiskDone(s.disk));
                        }
                    }
                    Err(FsError::QueueFull { .. }) => {
                        // Shed the chain under pressure; the next pass
                        // retries the block from scratch.
                        let ig = self.integrity.as_mut().expect("checked above");
                        ig.scrub_checks.remove(&block);
                        ig.scrub[p.index()].inflight = false;
                    }
                    Err(e) => panic!("scrub read of an in-range block rejected: {e:?}"),
                }
            }
            Next::Poison => {
                // A concurrent demand chain may have just delivered the
                // block clean; a demonstrably readable block is not
                // poisoned.
                let delivered = self.pool.buffer_for(block).is_some_and(|b| {
                    matches!(self.pool.buffer(b).state, rt_cache::BufState::Ready { .. })
                });
                if !delivered {
                    self.poison_block(block, sched);
                }
            }
        }
    }

    /// The replica whose placement of `block` is served by `disk`
    /// (0 = primary when no replica matches — possible only for raced
    /// duplicates under combined fault kinds).
    pub(super) fn replica_for_disk(&self, block: BlockId, disk: DiskId) -> u16 {
        let copies = 1 + self.fs.replica_count(self.file);
        (0..copies)
            .find(|&r| self.fs.placement_disk(self.file, block, r) == Some(disk))
            .unwrap_or(0)
    }

    /// The first replica of `block`, rotating from `start`, whose
    /// placement device the health tracker does not say to avoid —
    /// quarantined *or* behind an open breaker ([`HealthTracker::avoid`]).
    /// Falls back to `start % copies` when every copy is avoided. This is
    /// the one replica-health notion shared by demand selection, timeout
    /// retries, hedge targeting, and the scrubber.
    ///
    /// [`HealthTracker::avoid`]: crate::health::HealthTracker::avoid
    pub(super) fn healthy_replica(&self, block: BlockId, start: u16, now: SimTime) -> u16 {
        let copies = 1 + self.fs.replica_count(self.file);
        let start = start % copies;
        let Some(f) = &self.faults else { return start };
        (0..copies)
            .map(|i| (start + i) % copies)
            .find(|&r| {
                self.fs
                    .placement_disk(self.file, block, r)
                    .is_some_and(|d| !f.health.avoid(d, now))
            })
            .unwrap_or(start)
    }

    /// The first healthy replica of `block` for a fresh demand fetch
    /// (0 when neither the integrity layer nor the breaker is active, so
    /// default runs never pay the placement scan).
    pub(super) fn pick_demand_replica(&self, block: BlockId, now: SimTime) -> u16 {
        if self.integrity.is_none() && !self.cfg.faults.breaker.enabled {
            return 0;
        }
        self.healthy_replica(block, 0, now)
    }
}
