//! The file-system read path: lookup classification, miss work, copies
//! (with pinning), disk completions, and wake-ups.

use super::*;

impl World {
    /// Issue the read of the process's current access: acquire the cache
    /// lock; the lookup completes when the critical section ends.
    pub(super) fn issue_read(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let proc = &mut self.procs[p];
        proc.state = PState::Lookup;
        proc.read_start = now;
        // Fresh attribution: the first interval (lock queue + lookup) opens
        // here and is split by `attr_close_lock` when the lookup completes.
        proc.attr = ReadAttribution::default();
        proc.attr_mark = now;
        proc.attr_cur = Component::LockWait;
        let done = self
            .lock
            .acquire_until_done(now, self.cfg.costs.lookup_overhead);
        debug_assert!(proc.lock_cs.is_none());
        proc.lock_cs = Some((done, self.cfg.costs.lookup_overhead));
        proc.pending_ev = Some(sched.schedule_at(done, Ev::LookupDone(proc.id)));
    }

    /// The lookup critical section finished: classify hit/miss and either
    /// copy, wait, or start a demand fetch.
    pub(super) fn lookup_done(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        self.procs[p].pending_ev = None;
        self.procs[p].lock_cs = None;
        let access = self.procs[p].cur_access.expect("lookup without access");
        let block = access.block;
        match self.pool.lookup_for_read(block, now) {
            Lookup::ReadyHit(buf) => {
                self.procs[p].cur_outcome = Some(ReadOutcome::ReadyHit);
                self.attr_close_lock(p, now, self.cfg.costs.lookup_overhead, Component::Overhead);
                self.rec.hit_wait.record(SimDuration::ZERO);
                self.begin_copy(p, buf, sched);
            }
            Lookup::UnreadyHit { ready_at, .. } => {
                self.procs[p].cur_outcome = Some(ReadOutcome::UnreadyHit);
                // The whole remaining wait is hit-wait by definition: the
                // block was already in flight when this read arrived.
                self.attr_close_lock(p, now, self.cfg.costs.lookup_overhead, Component::HitWait);
                self.waiters.push(block, ProcId(p as u16));
                let proc = &mut self.procs[p];
                proc.state = PState::WaitBlock;
                proc.wait_since = now;
                proc.wait_is_hit = true;
                proc.expected_wake = (ready_at != SimTime::MAX).then_some(ready_at);
                // A demand read now depends on this in-flight fetch, so it
                // gets the same timeout protection as a direct miss —
                // otherwise a prefetch stuck on a sick device would turn a
                // timeout-guarded read into an unbounded wait.
                self.arm_timeout(block, ProcId(p as u16), sched);
                self.idle_begin(p, sched);
            }
            Lookup::Miss => {
                self.procs[p].cur_outcome = Some(ReadOutcome::Miss);
                self.attr_close_lock(p, now, self.cfg.costs.lookup_overhead, Component::LockWait);
                self.start_miss(p, block, sched);
            }
        }
    }

    /// Begin the copy of a ready block: pin it so it cannot be evicted
    /// mid-copy, refresh its recency, and schedule the read's completion.
    pub(super) fn begin_copy(
        &mut self,
        p: usize,
        buf: rt_cache::BufferId,
        sched: &mut Scheduler<Ev>,
    ) {
        let now = sched.now();
        self.pool.record_use(buf, ProcId(p as u16), now);
        self.rec
            .tl_prefetched
            .record(now, self.pool.prefetched_unused() as f64);
        self.pool.pin(buf);
        debug_assert!(self.procs[p].copying_buf.is_none());
        self.procs[p].copying_buf = Some(buf);
        let copy = self.copy_cost(p, buf);
        self.procs[p].state = PState::Copying;
        self.procs[p].pending_ev =
            Some(sched.schedule_in(copy, Ev::ReadFinished(ProcId(p as u16))));
    }

    /// Reserve a demand buffer for `block` and start the miss work. If all
    /// candidate buffers are pinned by in-flight copies, retry shortly.
    pub(super) fn start_miss(&mut self, p: usize, block: BlockId, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        if self
            .integrity
            .as_ref()
            .is_some_and(|ig| ig.poisoned.contains(&block))
        {
            // Every copy of this block is known corrupt: fail fast with
            // the typed error instead of re-fetching and re-discovering.
            self.fail_read(p, sched);
            return;
        }
        // Reserve the buffer immediately (so concurrent readers of the same
        // block become unready hits), then perform the miss work — RU-set
        // manipulation and disk enqueue — in its own critical section. The
        // node's file-system component is busy during that window, so no
        // prefetch action starts until the fetch is on the disk queue.
        match self
            .pool
            .alloc_demand(ProcId(p as u16), block, SimTime::MAX)
        {
            Some(_) => {
                // Close the interval since classification (zero on the
                // direct path, alloc backoff on retries); the next one —
                // lock queue + miss work — splits at `miss_issue`.
                self.attr_close(p, now, Component::LockWait);
                self.waiters.push(block, ProcId(p as u16));
                let done = self
                    .lock
                    .acquire_until_done(now, self.cfg.costs.miss_overhead);
                let proc = &mut self.procs[p];
                proc.state = PState::WaitBlock;
                proc.wait_since = now;
                proc.wait_is_hit = false;
                proc.expected_wake = None;
                debug_assert!(proc.lock_cs.is_none());
                proc.lock_cs = Some((done, self.cfg.costs.miss_overhead));
                proc.pending_ev = Some(sched.schedule_at(done, Ev::MissIssue(ProcId(p as u16))));
            }
            None => {
                // Every candidate buffer is pinned by an in-flight copy;
                // copies are short, so spin on the allocation.
                self.attr_close(p, now, Component::RetryBackoff);
                self.rec.alloc_retries += 1;
                self.procs[p].pending_ev = Some(
                    sched.schedule_in(self.cfg.costs.copy_remote, Ev::RetryMiss(ProcId(p as u16))),
                );
            }
        }
    }

    /// Retry a miss whose buffer allocation found only pinned victims. The
    /// block may have appeared in the cache meanwhile (another process
    /// fetched it); the read's original classification stands.
    pub(super) fn retry_miss(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        self.procs[p].pending_ev = None;
        let block = self.procs[p]
            .cur_access
            .expect("retry without access")
            .block;
        match self.pool.buffer_for(block) {
            Some(buf) => match self.pool.buffer(buf).state {
                rt_cache::BufState::Ready { .. } => {
                    self.attr_close(p, now, Component::Overhead);
                    self.begin_copy(p, buf, sched)
                }
                _ => {
                    // In flight on someone else's behalf: wait like an
                    // unready hit (but keep the original miss accounting).
                    self.attr_close(p, now, Component::HitWait);
                    self.waiters.push(block, ProcId(p as u16));
                    let proc = &mut self.procs[p];
                    proc.state = PState::WaitBlock;
                    proc.wait_since = now;
                    proc.wait_is_hit = false;
                    proc.expected_wake = None;
                    self.arm_timeout(block, ProcId(p as u16), sched);
                    self.idle_begin(p, sched);
                }
            },
            None => self.start_miss(p, block, sched),
        }
    }

    /// The miss work finished: the demand fetch goes on the disk queue and
    /// the node's daemon may use the remaining wait.
    pub(super) fn miss_issue(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        self.procs[p].pending_ev = None;
        self.procs[p].lock_cs = None;
        let block = self.procs[p]
            .cur_access
            .expect("miss work without access")
            .block;
        let who = ProcId(p as u16);
        // The lock queue + miss work interval ends; until the fetch starts
        // service the read waits in the device queue.
        self.attr_close_lock(p, now, self.cfg.costs.miss_overhead, Component::QueueWait);
        // Steer around quarantined devices when the integrity layer is
        // active; replica 0 otherwise (byte-identical to the old path).
        let replica = self.pick_demand_replica(block, now);
        let (started, parked) = self.submit_demand(now, block, replica, who);
        self.procs[p].expected_wake = self.note_started(block, started, sched);
        if !parked {
            self.arm_timeout(block, who, sched);
        }
        self.idle_begin(p, sched);
    }

    /// Submit a demand fetch of `block` via `replica`, absorbing a
    /// bounded queue's rejection: first shed a queued prefetch nobody
    /// waits on from the full device; failing that, park the demand until
    /// the device drains ([`World::drain_parked`] replays it). Returns the
    /// started request (None when queued or parked) and whether the fetch
    /// parked.
    pub(super) fn submit_demand(
        &mut self,
        now: SimTime,
        block: BlockId,
        replica: u16,
        who: ProcId,
    ) -> (Option<FsStarted>, bool) {
        for attempt in 0..2 {
            match self
                .fs
                .read_replica(now, self.file, block, replica, FetchKind::Demand, who)
            {
                Ok(started) => {
                    self.outstanding_io += 1;
                    self.rec
                        .tl_outstanding_io
                        .record(now, self.outstanding_io as f64);
                    // Timer-guarded fetches remember which copy is in
                    // flight, so a hedge can pick a different one and a
                    // completion can be attributed to its replica.
                    if self.cfg.faults.retry.timeout.is_some()
                        || self.cfg.faults.hedge.delay.is_some()
                    {
                        if let Some(fs) = &mut self.faults {
                            fs.pending.entry(block).or_default().replica = replica;
                        }
                    }
                    if started.is_none() {
                        self.note_demand_queued(block, replica);
                    }
                    // Submitting to an avoided device is legal only as a
                    // last resort (every copy avoided — patient waiting);
                    // mark it so the trace validator can tell the audited
                    // fallback from a steering failure.
                    self.note_bypass(block, replica, now);
                    return (started, false);
                }
                Err(FsError::QueueFull { disk, .. }) => {
                    if attempt == 0 && self.shed_queued_prefetch(disk, now) {
                        // A slot was freed; resubmit (the retry must now
                        // be accepted — the shed emptied one queue slot).
                        continue;
                    }
                    let adm = self
                        .admission
                        .as_mut()
                        .expect("bounded queue without admission state");
                    let q = &mut adm.parked[disk.index()];
                    // A block parks at most once: a fault-layer timeout
                    // may re-drive the same fetch while it is parked, and
                    // a duplicate park would later double-submit it.
                    if !q.iter().any(|e| e.block == block) {
                        q.push_back(ParkedDemand {
                            block,
                            who,
                            replica,
                        });
                    }
                    self.rec.demand_parked += 1;
                    self.obs_instant(
                        Track::Device(disk.0),
                        ObsKind::Park,
                        now,
                        block.index() as u64,
                        0,
                    );
                    return (None, true);
                }
                Err(e) => panic!("demand read of an in-range block rejected: {e:?}"),
            }
        }
        unreachable!("second submission after a shed cannot be rejected");
    }

    /// A demand fetch was just submitted to `replica`: if that copy's
    /// device is currently avoided (open breaker or quarantine), the
    /// submission was a deliberate last resort — every copy was avoided
    /// (patient waiting), or the target was fixed before the device went
    /// bad (a parked replay). Mark it so the trace validator can tell
    /// the audited fallback from a steering failure.
    fn note_bypass(&mut self, block: BlockId, replica: u16, now: SimTime) {
        if self.obs.is_none() {
            return;
        }
        let bypassed = self
            .fs
            .placement_disk(self.file, block, replica)
            .filter(|&d| self.faults.as_ref().is_some_and(|f| f.health.avoid(d, now)));
        if let Some(d) = bypassed {
            self.obs_instant(
                Track::Device(d.0),
                ObsKind::BreakerBypass,
                now,
                block.index() as u64,
                replica as u64,
            );
        }
    }

    /// A demand fetch just queued behind other work: if the overload
    /// layer is active and the device holds queued prefetches, count the
    /// inversion (demand waiting behind speculative work).
    fn note_demand_queued(&mut self, block: BlockId, replica: u16) {
        if self.admission.is_none() {
            return;
        }
        if let Some(disk) = self.fs.placement_disk(self.file, block, replica) {
            if self.fs.disks().disks()[disk.index()].queued_of_kind(FetchKind::Prefetch) > 0 {
                self.rec.demand_behind_prefetch += 1;
            }
        }
    }

    /// Cancel one queued prefetch on `disk` that no reader waits on,
    /// releasing its buffer and refunding its credit. Returns whether a
    /// queue slot was freed.
    fn shed_queued_prefetch(&mut self, disk: DiskId, now: SimTime) -> bool {
        let waiters = &self.waiters;
        let Some((file, block, _owner)) = self
            .fs
            .cancel_queued_prefetch(disk, now, |_, b| waiters.has_waiters(b))
        else {
            return false;
        };
        debug_assert_eq!(file, self.file);
        // The cancelled request will never complete: release its
        // submission accounting and its buffer.
        self.outstanding_io -= 1;
        self.rec
            .tl_outstanding_io
            .record(now, self.outstanding_io as f64);
        // The cancelled op may be a zombie: a timeout redirect can
        // deliver the block from another replica and the buffer be
        // consumed and evicted while the original op still sits in the
        // queue. Shedding the zombie frees the slot all the same; there
        // is just no pending buffer left to release.
        if let Some(buf) = self.pool.buffer_for(block) {
            if matches!(
                self.pool.buffer(buf).state,
                rt_cache::BufState::Pending { .. }
            ) {
                self.pool.discard_pending(buf);
                self.rec
                    .tl_prefetched
                    .record(now, self.pool.prefetched_unused() as f64);
            }
        }
        self.rec.prefetches_shed += 1;
        self.refund_prefetch_credit();
        self.obs_instant(
            Track::Device(disk.0),
            ObsKind::Shed,
            now,
            block.index() as u64,
            0,
        );
        true
    }

    /// Return one prefetch credit to the pool (no-op unless admission is
    /// enabled). Called exactly once per issued prefetch: when it
    /// completes at the device, or when it is shed from a queue.
    pub(super) fn refund_prefetch_credit(&mut self) {
        if let Some(adm) = &mut self.admission {
            if adm.cfg.enabled {
                adm.credits = (adm.credits + 1).min(adm.cfg.prefetch_credits);
            }
        }
    }

    /// Replay parked demand fetches on `disk` now that a completion freed
    /// queue room. Runs only while the overload layer is active.
    fn drain_parked(&mut self, disk: DiskId, sched: &mut Scheduler<Ev>) {
        loop {
            let Some(adm) = &mut self.admission else {
                return;
            };
            let Some(&ParkedDemand {
                block,
                who,
                replica,
            }) = adm.parked[disk.index()].front()
            else {
                return;
            };
            // Under faults a timeout-driven duplicate may have delivered
            // the block while it was parked; drop the stale entry.
            let delivered = self.pool.buffer_for(block).is_none_or(|b| {
                matches!(self.pool.buffer(b).state, rt_cache::BufState::Ready { .. })
            });
            if delivered {
                self.admission
                    .as_mut()
                    .expect("parked entries only exist with an admission state")
                    .parked[disk.index()]
                .pop_front();
                continue;
            }
            let now = sched.now();
            match self
                .fs
                .read_replica(now, self.file, block, replica, FetchKind::Demand, who)
            {
                Ok(started) => {
                    self.admission
                        .as_mut()
                        .expect("parked entries only exist with an admission state")
                        .parked[disk.index()]
                    .pop_front();
                    self.outstanding_io += 1;
                    self.rec
                        .tl_outstanding_io
                        .record(now, self.outstanding_io as f64);
                    if self.cfg.faults.retry.timeout.is_some()
                        || self.cfg.faults.hedge.delay.is_some()
                    {
                        if let Some(fs) = &mut self.faults {
                            fs.pending.entry(block).or_default().replica = replica;
                        }
                    }
                    if started.is_none() {
                        self.note_demand_queued(block, replica);
                    }
                    self.note_bypass(block, replica, now);
                    self.note_started(block, started, sched);
                    self.arm_timeout(block, who, sched);
                }
                Err(FsError::QueueFull { .. }) => return,
                Err(e) => panic!("parked demand resubmission rejected: {e:?}"),
            }
        }
    }

    /// Arm the per-request timeout and hedge delay for a demand fetch of
    /// `block`, whichever of the two the fault layer has configured.
    /// No-op otherwise, so fault-free runs schedule no timer events.
    pub(super) fn arm_timeout(&mut self, block: BlockId, who: ProcId, sched: &mut Scheduler<Ev>) {
        let Some(fs) = &self.faults else { return };
        let timeout = fs.retry.timeout;
        let hedging = self.cfg.faults.hedge.delay.is_some();
        if timeout.is_none() && !hedging {
            return;
        }
        let hedge_delay = if hedging {
            let replica = fs.pending.get(&block).map_or(0, |e| e.replica);
            self.hedge_delay_for(block, replica, sched.now())
        } else {
            None
        };
        let fs = self.faults.as_mut().expect("checked above");
        let entry = fs.pending.entry(block).or_default();
        entry.initiator = who;
        if let Some(id) = entry.timeout.take() {
            sched.cancel(id);
        }
        if let Some(t) = timeout {
            entry.timeout = Some(sched.schedule_in(t, Ev::IoTimeout(block)));
        }
        if let Some(id) = entry.hedge.take() {
            sched.cancel(id);
        }
        if entry.hedged.is_none() {
            if let Some(d) = hedge_delay {
                entry.hedge = Some(sched.schedule_in(d, Ev::Hedge(block)));
            }
        }
    }

    /// The hedge delay for the in-flight fetch of `block` on `replica`:
    /// `multiplier ×` the *hedge target's* latency EWMA once the health
    /// tracker has enough samples to trust it — once a duplicate sent
    /// elsewhere would probably already have finished — and the fixed
    /// `--hedge` delay until then. Keying on the target rather than the
    /// serving device matters for persistent stragglers: the straggler's
    /// own EWMA inflates until it would postpone the hedge past the
    /// timeout, exactly when duplicating elsewhere helps most. `None`
    /// when hedging is not configured or no healthy target exists.
    fn hedge_delay_for(&self, block: BlockId, replica: u16, now: SimTime) -> Option<SimDuration> {
        let fixed = self.cfg.faults.hedge.delay?;
        let f = self.faults.as_ref()?;
        let target = self.hedge_target(block, replica, now)?;
        let adaptive = self
            .fs
            .placement_disk(self.file, block, target)
            .filter(|&d| f.health.latency_trusted(d))
            .map(|d| {
                let ns = f.health.latency_ewma_ms(d) * 1e6 * self.cfg.faults.hedge.multiplier;
                SimDuration::from_nanos(ns.max(1.0) as u64)
            });
        Some(adaptive.unwrap_or(fixed))
    }

    /// Drop `block`'s fault bookkeeping, cancelling any armed timers.
    pub(super) fn clear_pending(&mut self, block: BlockId, sched: &mut Scheduler<Ev>) {
        if let Some(fs) = &mut self.faults {
            if let Some(entry) = fs.pending.remove(&block) {
                if let Some(id) = entry.timeout {
                    sched.cancel(id);
                }
                if let Some(id) = entry.hedge {
                    sched.cancel(id);
                }
            }
        }
    }

    /// Record a submission's outcome: when the request started service, its
    /// pending buffer learns the completion time and a completion event is
    /// scheduled. Queued requests stay at an unknown ready time until a
    /// completion starts them.
    pub(super) fn note_started(
        &mut self,
        block: BlockId,
        started: Option<FsStarted>,
        sched: &mut Scheduler<Ev>,
    ) -> Option<SimTime> {
        started.map(|s| {
            let buf = self
                .pool
                .buffer_for(block)
                .expect("started request without a pending buffer");
            self.pool.set_ready_at(buf, s.completion);
            // Waiters queued behind this fetch are now in device service.
            self.attr_service_begins(block, sched.now());
            sched.schedule_at(s.completion, Ev::DiskDone(s.disk));
            s.completion
        })
    }

    /// NUMA-aware copy cost: local buffers copy faster than remote ones.
    pub(super) fn copy_cost(&self, p: usize, buf: rt_cache::BufferId) -> SimDuration {
        if self.pool.buffer(buf).home == ProcId(p as u16) {
            self.cfg.costs.copy_local
        } else {
            self.cfg.costs.copy_remote
        }
    }

    /// The in-flight request on a disk completed: the finished block's
    /// buffer becomes ready; if queued work started, track its completion.
    pub(super) fn disk_done(&mut self, disk: DiskId, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let (done, next) = self.fs.complete(disk, now);
        debug_assert_eq!(done.file, self.file);
        self.outstanding_io -= 1;
        self.rec
            .tl_outstanding_io
            .record(now, self.outstanding_io as f64);
        let response = now.saturating_since(done.submitted);
        self.rec.disk_responses.record(response);
        if self.obs.is_some() {
            // Device-service span: the service window just ended; the
            // queue delay rides in the attribution slot for the exporter.
            let mut attr = ReadAttribution::default();
            attr.ns[Component::QueueWait as usize] =
                response.as_nanos().saturating_sub(done.service.as_nanos());
            let start = SimTime::from_nanos(now.as_nanos().saturating_sub(done.service.as_nanos()));
            self.obs_span(
                Track::Device(disk.0),
                ObsKind::DeviceService,
                start,
                done.service,
                done.block.index() as u64,
                fetch_code(done.kind),
                attr,
            );
        }
        if let Some(s) = next {
            // The newly started request's pending buffer learns its
            // completion time. Under faults a queued duplicate's block may
            // already be Ready (a replica beat it); its completion is still
            // tracked and lands as a stale completion. Scrub and repair
            // requests have no pool buffer at all.
            debug_assert_eq!(s.file, self.file);
            if matches!(s.kind, FetchKind::Demand | FetchKind::Prefetch) {
                if let Some(buf) = self.pool.buffer_for(s.block) {
                    if matches!(
                        self.pool.buffer(buf).state,
                        rt_cache::BufState::Pending { .. }
                    ) {
                        self.pool.set_ready_at(buf, s.completion);
                    } else {
                        debug_assert!(
                            self.faults.is_some(),
                            "queued request started for a non-pending buffer"
                        );
                    }
                }
                self.attr_service_begins(s.block, now);
            }
            sched.schedule_at(s.completion, Ev::DiskDone(disk));
        }
        if let Some(fs) = &mut self.faults {
            fs.health
                .observe(disk, done.status.is_ok(), done.service, now);
            // Successful completions earn back a fraction of a retry
            // token; spends are therefore bounded by
            // `capacity + refill × completions` by construction.
            if done.status.is_ok() {
                if let Some(cap) = self.cfg.faults.budget.capacity {
                    fs.budget_tokens =
                        (fs.budget_tokens + self.cfg.faults.budget.refill).min(f64::from(cap));
                }
            }
        }
        self.emit_breaker_closures();
        if self.admission.is_some() {
            // The overload layer settles its books at completion: a
            // finished prefetch returns its credit, and the freed queue
            // room replays parked demand fetches.
            if done.kind == FetchKind::Prefetch {
                self.refund_prefetch_credit();
            }
            self.drain_parked(disk, sched);
        }
        match done.kind {
            // Verify-only and rewrite traffic never touches the pool;
            // block_ready/io_failed must not see it.
            FetchKind::Scrub => return self.scrub_done(&done, disk, sched),
            FetchKind::Repair => return self.repair_done(&done),
            FetchKind::Demand | FetchKind::Prefetch => {}
        }
        match done.status {
            Ok(()) => {
                // The first successful completion of a hedged block scores
                // the race and reaps the losing duplicate.
                if self.cfg.faults.hedge.delay.is_some() {
                    self.resolve_hedge(done.block, disk, now);
                }
                if done.kind == FetchKind::Prefetch {
                    self.obs_instant(
                        Track::Device(disk.0),
                        ObsKind::PrefetchFill,
                        now,
                        done.block.index() as u64,
                        0,
                    );
                }
                if self.integrity.as_ref().is_some_and(|ig| ig.verify) {
                    // Hold the fill while its checksum is verified; the
                    // block is delivered (or repaired, or poisoned) when
                    // the check resolves. Miss-origin waiters accrue the
                    // hold (stale fills have no waiters — harmless).
                    self.attr_fetch_stage(done.block, now, Component::VerifyHold);
                    self.verify_fill(&done, disk, sched);
                } else {
                    if done.corrupt {
                        // Corruption reached a run without a verifier —
                        // the tripwire `check_soak_invariants` and the
                        // bench validator exist to catch. Unreachable
                        // while corrupt windows force verification on.
                        self.rec.corrupt_delivered += 1;
                    }
                    self.block_ready(done.block, sched);
                }
            }
            Err(_) => self.io_failed(done.block, done.kind, done.initiator, sched),
        }
    }

    /// A disk I/O completed: the buffer becomes ready; wake the waiters.
    pub(super) fn block_ready(&mut self, block: BlockId, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let Some(buf) = self.pool.buffer_for(block) else {
            // Only a redirected duplicate can complete after its block was
            // delivered, consumed, and evicted; without faults this is a
            // bookkeeping bug.
            assert!(
                self.faults.is_some(),
                "I/O completed for an unindexed block"
            );
            self.rec.stale_completions += 1;
            return;
        };
        if self.faults.is_some() {
            if matches!(
                self.pool.buffer(buf).state,
                rt_cache::BufState::Ready { .. }
            ) {
                // A redirected duplicate already delivered this block.
                self.rec.stale_completions += 1;
                return;
            }
            self.clear_pending(block, sched);
        }
        self.pool.complete_io(buf, now);
        // Drain the waiter list through the reusable scratch (wake() needs
        // `&mut self`, so the list cannot be borrowed while iterating).
        let mut woken = std::mem::take(&mut self.wake_scratch);
        self.waiters.drain_into(block, &mut woken);
        for &w in &woken {
            // Exactly-once tripwire: a drained waiter must still be
            // blocked on this very block. Anything else means a duplicate
            // (e.g. a hedge loser) reached a reader twice —
            // `check_soak_invariants` rejects the run.
            let expected = self.procs[w.index()].state == PState::WaitBlock
                && self.procs[w.index()]
                    .cur_access
                    .is_some_and(|a| a.block == block);
            if !expected {
                self.rec.duplicate_deliveries += 1;
                continue;
            }
            let (is_hit, since) = {
                let proc = &mut self.procs[w.index()];
                proc.logical_wake = Some(now);
                (proc.wait_is_hit, proc.wait_since)
            };
            if is_hit {
                self.rec.hit_wait.record(now.saturating_since(since));
            }
            // Pin on behalf of each waiter: the data must survive until
            // its (possibly overrun-delayed) copy completes.
            let buf = self.pool.buffer_for(block).expect("ready block indexed");
            self.pool.pin(buf);
            self.wake(w.index(), sched);
        }
        woken.clear();
        self.wake_scratch = woken;
    }

    /// Resume a process whose wake condition fired, unless a prefetch
    /// action is in flight on its node (then the action's completion
    /// resumes it — overrun).
    pub(super) fn wake(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        if self.procs[p].logical_wake.is_none() {
            self.procs[p].logical_wake = Some(sched.now());
        }
        if self.procs[p].action_busy {
            return;
        }
        self.resume(p, sched);
    }

    /// Actually resume a process out of an idle period, accounting the
    /// idle time and any overrun.
    pub(super) fn resume(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let (wake, idle_since) = {
            let proc = &mut self.procs[p];
            let wake = proc.logical_wake.take().expect("resume without wake");
            let idle_since = proc.idle_since.take().expect("resume without idle start");
            (wake, idle_since)
        };
        self.rec
            .idle_necessary
            .record(wake.saturating_since(idle_since));
        self.rec
            .idle_actual
            .record(now.saturating_since(idle_since));
        if now > wake {
            self.rec.overrun.record(now - wake);
        }
        match self.procs[p].state {
            PState::WaitBlock => {
                let block = self.procs[p]
                    .cur_access
                    .expect("waiting without access")
                    .block;
                if self
                    .integrity
                    .as_mut()
                    .and_then(|ig| ig.read_errors[p].take())
                    .is_some()
                {
                    // The block was poisoned while this process waited:
                    // complete the read with the typed error instead of
                    // copying data (there is no buffer to copy from).
                    self.fail_read(p, sched);
                    return;
                }
                // The wait ends here — any overrun tail lands in the last
                // waiting component; the copy itself is overhead.
                self.attr_close(p, now, Component::Overhead);
                // The buffer was pinned on this process's behalf when the
                // I/O completed, so the data cannot have vanished.
                let buf = self
                    .pool
                    .buffer_for(block)
                    .expect("pinned block evicted before its copy");
                self.pool.record_use(buf, ProcId(p as u16), now);
                self.rec
                    .tl_prefetched
                    .record(now, self.pool.prefetched_unused() as f64);
                debug_assert!(self.procs[p].copying_buf.is_none());
                self.procs[p].copying_buf = Some(buf);
                let copy = self.copy_cost(p, buf);
                self.procs[p].state = PState::Copying;
                self.procs[p].pending_ev =
                    Some(sched.schedule_in(copy, Ev::ReadFinished(ProcId(p as u16))));
            }
            PState::AtBarrier => {
                self.procs[p].state = PState::Running;
                self.proceed_next(p, sched);
            }
            other => panic!("resume in unexpected state {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Fault handling: failed completions, retries, timeouts. None of this
    // runs unless the configuration injects faults or arms timeouts.
    // ------------------------------------------------------------------

    /// A disk completion carried an error. Demand fetches (and prefetches
    /// someone is already waiting on) are retried with exponential
    /// backoff, rotating across replicas when the file has them; idle
    /// prefetches are dropped.
    pub(super) fn io_failed(
        &mut self,
        block: BlockId,
        kind: FetchKind,
        who: ProcId,
        sched: &mut Scheduler<Ev>,
    ) {
        let now = sched.now();
        self.rec.io_errors += 1;
        let Some(buf) = self.pool.buffer_for(block) else {
            // A redirected duplicate failed after the block was already
            // delivered, consumed, and evicted; nothing to do.
            self.rec.stale_completions += 1;
            return;
        };
        if matches!(
            self.pool.buffer(buf).state,
            rt_cache::BufState::Ready { .. }
        ) {
            // A duplicate already delivered the block; the failure is moot.
            self.rec.stale_completions += 1;
            return;
        }
        if kind == FetchKind::Prefetch && !self.waiters.has_waiters(block) {
            // Nobody wants the block yet: drop the speculative fetch
            // rather than spend retries on it. A later demand read
            // fetches it through the normal miss path.
            self.pool.discard_pending(buf);
            self.rec
                .tl_prefetched
                .record(now, self.pool.prefetched_unused() as f64);
            self.rec.aborted_prefetches += 1;
            self.clear_pending(block, sched);
            return;
        }
        if self.crash.is_some() && kind == FetchKind::Demand && !self.waiters.has_waiters(block) {
            // Under a crash plan a demand fetch can outlive every reader
            // that wanted it. A failing orphan is dropped rather than
            // retried forever on behalf of the dead; a rejoiner re-misses
            // cleanly.
            self.pool.discard_pending(buf);
            self.clear_pending(block, sched);
            return;
        }
        // The ready estimate is void until a resubmission starts service.
        self.pool.set_ready_at(buf, SimTime::MAX);
        // Waiters back off with the fetch until the retry enters service.
        self.attr_fetch_stage(block, now, Component::RetryBackoff);
        let fs = self
            .faults
            .as_mut()
            .expect("fault outcome without a fault layer");
        let entry = fs.pending.entry(block).or_default();
        entry.initiator = who;
        let attempt = entry.attempts;
        entry.attempts += 1;
        if attempt >= fs.retry.max_retries {
            // Past the retry budget: keep probing at the capped backoff
            // (demand reads are never abandoned) but record the overflow.
            self.rec.retries_exhausted += 1;
        }
        let delay = fs.retry.backoff_for(attempt);
        sched.schedule_in(delay, Ev::RetryIo(block));
    }

    /// A backoff elapsed: resubmit the fetch, rotating to the next
    /// replica when the file has copies.
    pub(super) fn retry_io(&mut self, block: BlockId, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let Some(buf) = self.pool.buffer_for(block) else {
            self.rec.stale_completions += 1;
            return;
        };
        if matches!(
            self.pool.buffer(buf).state,
            rt_cache::BufState::Ready { .. }
        ) {
            // A duplicate delivered the block while we backed off.
            return;
        }
        let copies = 1 + self.fs.replica_count(self.file) as u32;
        let (replica, who) = {
            let fs = self.faults.as_mut().expect("retry without a fault layer");
            let entry = fs.pending.entry(block).or_default();
            ((entry.attempts % copies) as u16, entry.initiator)
        };
        // Steer the rotation past avoided devices (quarantined or behind
        // an open breaker) — the shared replica-health notion. Identity
        // when nothing is avoided, so pure-fault runs are untouched.
        let replica = self.healthy_replica(block, replica, now);
        // The recorded initiator may have crashed since the entry was
        // written; charge the resubmission to a survivor.
        let who = self.live_initiator(who);
        self.rec.retries += 1;
        if replica != 0 {
            self.rec.redirects += 1;
        }
        // Timeout-driven redirects arrive with waiters still counted in
        // service; park them back in backoff until the duplicate starts.
        self.attr_fetch_stage(block, now, Component::RetryBackoff);
        if self.obs.is_some() {
            if let Some(d) = self.fs.placement_disk(self.file, block, replica) {
                self.obs_instant(
                    Track::Device(d.0),
                    ObsKind::Retry,
                    now,
                    block.index() as u64,
                    replica as u64,
                );
            }
        }
        // A bounded queue may also reject the resubmission; it then sheds
        // a queued prefetch or parks like any other demand fetch.
        let (started, parked) = self.submit_demand(now, block, replica, who);
        self.note_started(block, started, sched);
        if !parked {
            self.arm_timeout(block, who, sched);
        }
    }

    /// A demand fetch's timeout fired: if the block is still in flight,
    /// race a duplicate on the next replica (when one exists and the
    /// retry budget allows — otherwise just count the stall and keep
    /// waiting patiently on the single copy).
    pub(super) fn io_timeout(&mut self, block: BlockId, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let copies = 1 + self.fs.replica_count(self.file) as u32;
        let still_pending = self.pool.buffer_for(block).is_some_and(|b| {
            matches!(
                self.pool.buffer(b).state,
                rt_cache::BufState::Pending { .. }
            )
        });
        {
            let Some(fs) = &mut self.faults else { return };
            let Some(entry) = fs.pending.get_mut(&block) else {
                return;
            };
            entry.timeout = None;
            if !still_pending {
                // Delivered (or dropped) while the timer was in flight.
                fs.pending.remove(&block);
                return;
            }
        }
        // A stalled request is breaker evidence even though it never
        // completed: feed the serving device's error EWMA.
        let replica = self
            .faults
            .as_ref()
            .and_then(|f| f.pending.get(&block))
            .map_or(0, |e| e.replica);
        if let Some(d) = self.fs.placement_disk(self.file, block, replica) {
            self.faults
                .as_mut()
                .expect("checked above")
                .health
                .observe_timeout(d, now);
            self.emit_breaker_closures();
        }
        // Redirect to another copy when one exists and the retry budget
        // allows; budget exhaustion falls back to patient waiting —
        // no retry storms by construction.
        let mut redirect = copies > 1;
        if redirect && !self.take_budget_token() {
            self.rec.retries_denied += 1;
            redirect = false;
        }
        let fs = self.faults.as_mut().expect("checked above");
        let entry = fs.pending.get_mut(&block).expect("checked above");
        if redirect {
            entry.attempts += 1;
        } else {
            let timeout = fs
                .retry
                .timeout
                .expect("timeout event without a timeout policy");
            entry.timeout = Some(sched.schedule_in(timeout, Ev::IoTimeout(block)));
        }
        self.rec.timeouts += 1;
        if self.obs.is_some() {
            if let Some(d) = self.fs.placement_disk(self.file, block, 0) {
                self.obs_instant(
                    Track::Device(d.0),
                    ObsKind::Timeout,
                    sched.now(),
                    block.index() as u64,
                    redirect as u64,
                );
            }
        }
        if redirect {
            self.retry_io(block, sched);
        }
    }

    // ------------------------------------------------------------------
    // Hedged reads and the retry budget. Inert unless `--hedge` or
    // `--retry-budget` is configured.
    // ------------------------------------------------------------------

    /// Take one whole token from the retry budget. Always succeeds when
    /// no budget is configured; otherwise a hedge or timeout-redirect may
    /// only proceed when a token is available.
    fn take_budget_token(&mut self) -> bool {
        if self.cfg.faults.budget.capacity.is_none() {
            return true;
        }
        let fs = self
            .faults
            .as_mut()
            .expect("retry budget without a fault layer");
        if fs.budget_tokens >= 1.0 {
            fs.budget_tokens -= 1.0;
            self.rec.budget_spent += 1;
            true
        } else {
            false
        }
    }

    /// Return a token taken for a hedge that could not launch after all
    /// (its target queue was full).
    fn refund_budget_token(&mut self) {
        let Some(cap) = self.cfg.faults.budget.capacity else {
            return;
        };
        let fs = self
            .faults
            .as_mut()
            .expect("retry budget without a fault layer");
        fs.budget_tokens = (fs.budget_tokens + 1.0).min(f64::from(cap));
        self.rec.budget_spent -= 1;
    }

    /// The replica a hedge of `block` should duplicate to: the first copy
    /// after `cur` in rotation whose device the health tracker does not
    /// say to avoid. `None` when the file has no other healthy copy.
    fn hedge_target(&self, block: BlockId, cur: u16, now: SimTime) -> Option<u16> {
        let copies = 1 + self.fs.replica_count(self.file);
        let f = self.faults.as_ref()?;
        (1..copies).map(|i| (cur + i) % copies).find(|&r| {
            self.fs
                .placement_disk(self.file, block, r)
                .is_some_and(|d| !f.health.avoid(d, now))
        })
    }

    /// The hedge delay of `block`'s demand fetch elapsed: if the block is
    /// still in flight and the retry budget allows, launch a duplicate
    /// fetch to the next healthy replica. The first completion wins
    /// ([`World::resolve_hedge`]); the loser is cancelled from its queue
    /// or absorbed as a stale completion.
    pub(super) fn hedge_fire(&mut self, block: BlockId, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let still_pending = self.pool.buffer_for(block).is_some_and(|b| {
            matches!(
                self.pool.buffer(b).state,
                rt_cache::BufState::Pending { .. }
            )
        });
        let (cur, who) = {
            let Some(fs) = &mut self.faults else { return };
            let Some(entry) = fs.pending.get_mut(&block) else {
                return;
            };
            entry.hedge = None;
            if !still_pending || entry.hedged.is_some() {
                // Delivered while the timer was in flight (the completion
                // path clears the entry), or already hedged.
                return;
            }
            (entry.replica, entry.initiator)
        };
        let Some(target) = self.hedge_target(block, cur, now) else {
            return;
        };
        if !self.take_budget_token() {
            // Budget exhausted: fall back to patient single-copy waiting
            // (the timeout, if armed, keeps guarding the read).
            self.rec.retries_denied += 1;
            return;
        }
        // The recorded initiator may have crashed since the fetch was
        // submitted; charge the duplicate to a survivor.
        let who = self.live_initiator(who);
        match self
            .fs
            .read_replica(now, self.file, block, target, FetchKind::Demand, who)
        {
            Ok(started) => {
                self.outstanding_io += 1;
                self.rec
                    .tl_outstanding_io
                    .record(now, self.outstanding_io as f64);
                // Schedule the duplicate's completion directly: the
                // pending buffer keeps the primary's ready estimate, and
                // waiters accrue hedge-wait (not service) until delivery.
                if let Some(s) = started {
                    sched.schedule_at(s.completion, Ev::DiskDone(s.disk));
                }
                let fs = self.faults.as_mut().expect("hedge without a fault layer");
                let entry = fs.pending.entry(block).or_default();
                entry.hedged = Some(target);
                entry.initiator = who;
                self.rec.hedges_launched += 1;
                self.attr_fetch_stage(block, now, Component::HedgeWait);
                if self.obs.is_some() {
                    if let Some(d) = self.fs.placement_disk(self.file, block, target) {
                        self.obs_instant(
                            Track::Device(d.0),
                            ObsKind::HedgeLaunch,
                            now,
                            block.index() as u64,
                            target as u64,
                        );
                    }
                }
            }
            Err(FsError::QueueFull { .. }) => {
                // The target queue is full: skip the hedge (no parking —
                // the primary is still in flight) and return the token.
                self.refund_budget_token();
            }
            Err(e) => panic!("hedge read of an in-range block rejected: {e:?}"),
        }
    }

    /// The first `Ok` completion for a hedged block arrived on `disk`:
    /// score the race (a win if the hedge's replica delivered first),
    /// then cancel the losing duplicate while it is still queued. A loser
    /// already in service completes later and is absorbed by the
    /// stale-completion checks — waiters are woken exactly once either
    /// way.
    fn resolve_hedge(&mut self, block: BlockId, disk: DiskId, now: SimTime) {
        let (hedged, primary) = {
            let Some(fs) = &mut self.faults else { return };
            let Some(entry) = fs.pending.get_mut(&block) else {
                return;
            };
            let Some(h) = entry.hedged.take() else { return };
            (h, entry.replica)
        };
        let won = self.replica_for_disk(block, disk) == hedged;
        if won {
            self.rec.hedge_wins += 1;
            self.obs_instant(
                Track::Device(disk.0),
                ObsKind::HedgeWin,
                now,
                block.index() as u64,
                hedged as u64,
            );
        } else {
            self.rec.hedge_wasted += 1;
        }
        let loser = if won { primary } else { hedged };
        if let Some(ld) = self.fs.placement_disk(self.file, block, loser) {
            if ld != disk
                && self
                    .fs
                    .cancel_queued_demand(ld, now, self.file, block)
                    .is_some()
            {
                self.outstanding_io -= 1;
                self.rec
                    .tl_outstanding_io
                    .record(now, self.outstanding_io as f64);
                self.rec.hedge_cancels += 1;
                self.obs_instant(
                    Track::Device(ld.0),
                    ObsKind::HedgeCancel,
                    now,
                    block.index() as u64,
                    loser as u64,
                );
            }
        }
    }
}
