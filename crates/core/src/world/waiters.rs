//! Per-block waiter lists, stored densely.
//!
//! Every read that blocks on an in-flight I/O registers here; the disk
//! completion drains the block's list and wakes everyone. The table is a
//! flat `Vec` indexed by block number — the file size is fixed at
//! construction — and each list holds its first few waiters inline, so the
//! steady-state wait/wake cycle touches no allocator and no hash: almost
//! every block has at most a handful of concurrent readers, and the rare
//! pile-up spills to a heap vector that keeps its capacity for the rest of
//! the run.

use rt_disk::{BlockId, ProcId};

/// Waiters held inline per block before spilling to the heap.
const INLINE: usize = 4;

#[derive(Clone)]
struct WaiterList {
    inline: [ProcId; INLINE],
    len: u8,
    spill: Vec<ProcId>,
}

impl WaiterList {
    const EMPTY: WaiterList = WaiterList {
        inline: [ProcId(0); INLINE],
        len: 0,
        spill: Vec::new(),
    };
}

/// Dense block-number → waiting-processes table.
#[derive(Clone)]
pub(crate) struct WaiterTable {
    lists: Vec<WaiterList>,
}

impl WaiterTable {
    /// A table covering blocks `0..file_blocks`, all lists empty.
    pub fn new(file_blocks: u32) -> Self {
        WaiterTable {
            lists: vec![WaiterList::EMPTY; file_blocks as usize],
        }
    }

    /// Register `proc` as waiting for `block`. Wake order is registration
    /// order (inline entries first, then the spill — which is exactly
    /// arrival order).
    pub fn push(&mut self, block: BlockId, proc: ProcId) {
        let list = &mut self.lists[block.index()];
        if (list.len as usize) < INLINE {
            list.inline[list.len as usize] = proc;
            list.len += 1;
        } else {
            list.spill.push(proc);
        }
    }

    /// Visit every waiter for `block` in registration order without
    /// draining the list (used for latency-attribution transitions, where
    /// the wait continues but its component changes).
    pub fn for_each(&self, block: BlockId, mut f: impl FnMut(ProcId)) {
        let list = &self.lists[block.index()];
        for p in &list.inline[..list.len as usize] {
            f(*p);
        }
        for p in &list.spill {
            f(*p);
        }
    }

    /// Total registrations across every block. A drained run must report
    /// zero — anything left is a waiter whose wake will never fire.
    pub fn total(&self) -> usize {
        self.lists
            .iter()
            .map(|l| l.len as usize + l.spill.len())
            .sum()
    }

    /// Is anyone waiting for `block`?
    pub fn has_waiters(&self, block: BlockId) -> bool {
        let list = &self.lists[block.index()];
        list.len > 0 || !list.spill.is_empty()
    }

    /// Remove one registration of `proc` from `block`'s list, preserving
    /// the registration order of everyone else. Returns whether an entry
    /// was removed (used when a waiting process crashes — its wake must
    /// never fire).
    pub fn remove(&mut self, block: BlockId, proc: ProcId) -> bool {
        let list = &mut self.lists[block.index()];
        let len = list.len as usize;
        if let Some(pos) = list.inline[..len].iter().position(|&p| p == proc) {
            list.inline.copy_within(pos + 1..len, pos);
            if list.spill.is_empty() {
                list.len -= 1;
            } else {
                list.inline[len - 1] = list.spill.remove(0);
            }
            return true;
        }
        if let Some(pos) = list.spill.iter().position(|&p| p == proc) {
            list.spill.remove(pos);
            return true;
        }
        false
    }

    /// Move every waiter for `block` into `out` (appended in registration
    /// order), leaving the list empty. The spill vector keeps its capacity
    /// for the block's next pile-up.
    pub fn drain_into(&mut self, block: BlockId, out: &mut Vec<ProcId>) {
        let list = &mut self.lists[block.index()];
        out.extend_from_slice(&list.inline[..list.len as usize]);
        list.len = 0;
        out.append(&mut list.spill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_preserves_registration_order_across_spill() {
        let mut t = WaiterTable::new(8);
        for p in 0..7u16 {
            t.push(BlockId(3), ProcId(p));
        }
        let mut out = Vec::new();
        t.drain_into(BlockId(3), &mut out);
        assert_eq!(out, (0..7).map(ProcId).collect::<Vec<_>>());
        out.clear();
        t.drain_into(BlockId(3), &mut out);
        assert!(out.is_empty(), "drain leaves the list empty");
    }

    #[test]
    fn lists_are_independent() {
        let mut t = WaiterTable::new(4);
        t.push(BlockId(0), ProcId(9));
        t.push(BlockId(2), ProcId(1));
        let mut out = Vec::new();
        t.drain_into(BlockId(2), &mut out);
        assert_eq!(out, vec![ProcId(1)]);
        out.clear();
        t.drain_into(BlockId(0), &mut out);
        assert_eq!(out, vec![ProcId(9)]);
    }

    #[test]
    fn remove_preserves_order_across_spill() {
        let mut t = WaiterTable::new(2);
        for p in 0..7u16 {
            t.push(BlockId(1), ProcId(p));
        }
        // Remove an inline entry: the first spilled waiter backfills.
        assert!(t.remove(BlockId(1), ProcId(2)));
        // Remove a spilled entry.
        assert!(t.remove(BlockId(1), ProcId(6)));
        // A proc that is not registered is a no-op.
        assert!(!t.remove(BlockId(1), ProcId(2)));
        let mut out = Vec::new();
        t.drain_into(BlockId(1), &mut out);
        assert_eq!(out, [0, 1, 3, 4, 5].map(ProcId).to_vec());
    }

    #[test]
    fn remove_last_inline_entry_empties_list() {
        let mut t = WaiterTable::new(1);
        t.push(BlockId(0), ProcId(4));
        assert!(t.has_waiters(BlockId(0)));
        assert!(t.remove(BlockId(0), ProcId(4)));
        assert!(!t.has_waiters(BlockId(0)));
    }

    #[test]
    fn reuse_after_drain() {
        let mut t = WaiterTable::new(1);
        for round in 0..3 {
            for p in 0..6u16 {
                t.push(BlockId(0), ProcId(p));
            }
            let mut out = Vec::new();
            t.drain_into(BlockId(0), &mut out);
            assert_eq!(out.len(), 6, "round {round}");
        }
    }
}
