//! Per-block waiter lists, stored densely.
//!
//! Every read that blocks on an in-flight I/O registers here; the disk
//! completion drains the block's list and wakes everyone. The table is a
//! flat `Vec` indexed by block number — the file size is fixed at
//! construction — and each list holds its first few waiters inline, so the
//! steady-state wait/wake cycle touches no allocator and no hash: almost
//! every block has at most a handful of concurrent readers, and the rare
//! pile-up spills to a heap vector that keeps its capacity for the rest of
//! the run.

use rt_disk::{BlockId, ProcId};

/// Waiters held inline per block before spilling to the heap.
const INLINE: usize = 4;

#[derive(Clone)]
struct WaiterList {
    inline: [ProcId; INLINE],
    len: u8,
    spill: Vec<ProcId>,
}

impl WaiterList {
    const EMPTY: WaiterList = WaiterList {
        inline: [ProcId(0); INLINE],
        len: 0,
        spill: Vec::new(),
    };
}

/// Dense block-number → waiting-processes table.
#[derive(Clone)]
pub(crate) struct WaiterTable {
    lists: Vec<WaiterList>,
}

impl WaiterTable {
    /// A table covering blocks `0..file_blocks`, all lists empty.
    pub fn new(file_blocks: u32) -> Self {
        WaiterTable {
            lists: vec![WaiterList::EMPTY; file_blocks as usize],
        }
    }

    /// Register `proc` as waiting for `block`. Wake order is registration
    /// order (inline entries first, then the spill — which is exactly
    /// arrival order).
    pub fn push(&mut self, block: BlockId, proc: ProcId) {
        let list = &mut self.lists[block.index()];
        if (list.len as usize) < INLINE {
            list.inline[list.len as usize] = proc;
            list.len += 1;
        } else {
            list.spill.push(proc);
        }
    }

    /// Visit every waiter for `block` in registration order without
    /// draining the list (used for latency-attribution transitions, where
    /// the wait continues but its component changes).
    pub fn for_each(&self, block: BlockId, mut f: impl FnMut(ProcId)) {
        let list = &self.lists[block.index()];
        for p in &list.inline[..list.len as usize] {
            f(*p);
        }
        for p in &list.spill {
            f(*p);
        }
    }

    /// Is anyone waiting for `block`?
    pub fn has_waiters(&self, block: BlockId) -> bool {
        let list = &self.lists[block.index()];
        list.len > 0 || !list.spill.is_empty()
    }

    /// Move every waiter for `block` into `out` (appended in registration
    /// order), leaving the list empty. The spill vector keeps its capacity
    /// for the block's next pile-up.
    pub fn drain_into(&mut self, block: BlockId, out: &mut Vec<ProcId>) {
        let list = &mut self.lists[block.index()];
        out.extend_from_slice(&list.inline[..list.len as usize]);
        list.len = 0;
        out.append(&mut list.spill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_preserves_registration_order_across_spill() {
        let mut t = WaiterTable::new(8);
        for p in 0..7u16 {
            t.push(BlockId(3), ProcId(p));
        }
        let mut out = Vec::new();
        t.drain_into(BlockId(3), &mut out);
        assert_eq!(out, (0..7).map(ProcId).collect::<Vec<_>>());
        out.clear();
        t.drain_into(BlockId(3), &mut out);
        assert!(out.is_empty(), "drain leaves the list empty");
    }

    #[test]
    fn lists_are_independent() {
        let mut t = WaiterTable::new(4);
        t.push(BlockId(0), ProcId(9));
        t.push(BlockId(2), ProcId(1));
        let mut out = Vec::new();
        t.drain_into(BlockId(2), &mut out);
        assert_eq!(out, vec![ProcId(1)]);
        out.clear();
        t.drain_into(BlockId(0), &mut out);
        assert_eq!(out, vec![ProcId(9)]);
    }

    #[test]
    fn reuse_after_drain() {
        let mut t = WaiterTable::new(1);
        for round in 0..3 {
            for p in 0..6u16 {
                t.push(BlockId(0), ProcId(p));
            }
            let mut out = Vec::new();
            t.drain_into(BlockId(0), &mut out);
            assert_eq!(out.len(), 6, "round {round}");
        }
    }
}
