//! The idle-time prefetching daemon: action scheduling, block selection,
//! and overrun semantics.

use super::*;

impl World {
    // ------------------------------------------------------------------
    // The prefetching daemon.
    // ------------------------------------------------------------------

    /// An idle period begins on node `p`: start the daemon if configured.
    pub(super) fn idle_begin(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        self.procs[p].idle_since = Some(sched.now());
        self.procs[p].logical_wake = None;
        self.procs[p].last_action_empty = false;
        self.maybe_start_action(p, sched);
    }

    /// Start one prefetch action on node `p` if the daemon may run.
    pub(super) fn maybe_start_action(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        if !self.cfg.prefetch.enabled || self.procs[p].action_busy {
            return;
        }
        let now = sched.now();
        // Minimum-prefetch-time rule (§V-D): skip when the estimated
        // remaining idle time is too short. The estimate is exact for I/O
        // waits; barrier waits have no estimate and always qualify.
        if !self.cfg.prefetch.min_action_time.is_zero() {
            if let Some(wake) = self.procs[p].expected_wake {
                if wake.saturating_since(now) < self.cfg.prefetch.min_action_time {
                    return;
                }
            }
        }
        // Repeat considerations that found nothing are cheaper: the
        // selection runs but no buffer/I/O work follows.
        let hold = if self.procs[p].last_action_empty {
            self.cfg.costs.action_fail_hold
        } else {
            self.cfg.costs.action_hold
        };
        let done = self.lock.acquire_until_done(now, hold);
        let proc = &mut self.procs[p];
        proc.action_busy = true;
        proc.action_started = now;
        sched.schedule_at(done, Ev::ActionEnd(proc.id));
    }

    /// A prefetch action completed: perform its effect (selection ran
    /// inside the critical section), then resume the user process if its
    /// wake fired meanwhile, or consider another action.
    pub(super) fn action_end(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        self.procs[p].action_busy = false;
        self.rec
            .action_time
            .record(now - self.procs[p].action_started);

        let candidate = self.select_block(p);
        match candidate {
            Some(block) => {
                self.procs[p].last_action_empty = false;
                match self.pool.try_reserve_prefetch(ProcId(p as u16), block) {
                    Ok(buf) => {
                        self.pool.commit_prefetch(buf, block, SimTime::MAX);
                        self.rec.proc_prefetches[p] += 1;
                        self.rec
                            .tl_prefetched
                            .record(now, self.pool.prefetched_unused() as f64);
                        let started = self
                            .fs
                            .read(now, self.file, block, FetchKind::Prefetch, ProcId(p as u16))
                            .expect("policy blocks are in range");
                        self.outstanding_io += 1;
                        self.rec
                            .tl_outstanding_io
                            .record(now, self.outstanding_io as f64);
                        self.note_started(block, started, sched);
                    }
                    Err(_) => {
                        self.rec.blocked_actions += 1;
                    }
                }
            }
            None => {
                self.rec.empty_actions += 1;
                self.procs[p].last_action_empty = true;
            }
        }

        if self.procs[p].logical_wake.is_some() {
            self.resume(p, sched);
        } else if self.procs[p].idle_since.is_some() {
            self.maybe_start_action(p, sched);
        }
    }

    /// Pick the next block to prefetch on behalf of node `p`.
    pub(super) fn select_block(&mut self, p: usize) -> Option<BlockId> {
        match self.cfg.prefetch.policy {
            PolicyKind::Oracle => {
                let (string, frontier, hint) = match &*self.workload {
                    Workload::Local(strings) => (&strings[p], self.procs[p].cursor.position(), p),
                    Workload::Global(s) => (s, self.global_cursor.position(), 0),
                };
                let view = OracleView {
                    string,
                    frontier,
                    cross_portions: self.cfg.pattern.may_prefetch_across_portions(),
                    min_lead: self.cfg.prefetch.min_lead,
                };
                if self.oracle_hint_sound {
                    // Duplicate-free workload: the scan memo is sound and
                    // turns the per-action re-walk of the cached span into
                    // an amortized O(1) resume.
                    select_oracle_hinted(&view, &self.pool, &mut self.oracle_hints[hint])
                } else {
                    select_oracle(&view, &self.pool)
                }
            }
            PolicyKind::Obl { .. } | PolicyKind::PortionLearner { .. } => {
                let preds = self.predictors[p]
                    .as_ref()
                    .expect("online policy without predictor")
                    .predict(16);
                select_predicted(&preds, &self.pool)
            }
        }
    }
}
