//! The idle-time prefetching daemon: action scheduling, block selection,
//! and overrun semantics.

use super::*;

impl World {
    // ------------------------------------------------------------------
    // The prefetching daemon.
    // ------------------------------------------------------------------

    /// An idle period begins on node `p`: start the daemon if configured.
    pub(super) fn idle_begin(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        self.procs[p].idle_since = Some(sched.now());
        self.procs[p].logical_wake = None;
        self.procs[p].last_action_empty = false;
        self.maybe_start_action(p, sched);
    }

    /// Start one daemon action on node `p` if the daemon may run — a
    /// prefetch when prefetching is configured, otherwise (or when the
    /// prefetcher finds no candidate) a scrub read.
    pub(super) fn maybe_start_action(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let scrubbing = self.integrity.as_ref().is_some_and(|ig| ig.cfg.scrub);
        if (!self.cfg.prefetch.enabled && !scrubbing) || self.procs[p].action_busy {
            return;
        }
        let now = sched.now();
        // Minimum-prefetch-time rule (§V-D): skip when the estimated
        // remaining idle time is too short. The estimate is exact for I/O
        // waits; barrier waits have no estimate and always qualify.
        if !self.cfg.prefetch.min_action_time.is_zero() {
            if let Some(wake) = self.procs[p].expected_wake {
                if wake.saturating_since(now) < self.cfg.prefetch.min_action_time {
                    return;
                }
            }
        }
        // Repeat considerations that found nothing are cheaper: the
        // selection runs but no buffer/I/O work follows.
        let hold = if self.procs[p].last_action_empty {
            self.cfg.costs.action_fail_hold
        } else {
            self.cfg.costs.action_hold
        };
        let done = self.lock.acquire_until_done(now, hold);
        let proc = &mut self.procs[p];
        proc.action_busy = true;
        proc.action_started = now;
        debug_assert!(proc.lock_cs.is_none());
        proc.lock_cs = Some((done, hold));
        proc.action_ev = Some(sched.schedule_at(done, Ev::ActionEnd(proc.id)));
    }

    /// A prefetch action completed: perform its effect (selection ran
    /// inside the critical section), then resume the user process if its
    /// wake fired meanwhile, or consider another action.
    pub(super) fn action_end(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        self.procs[p].action_ev = None;
        self.procs[p].lock_cs = None;
        self.procs[p].action_busy = false;
        let action_started = self.procs[p].action_started;
        self.rec.action_time.record(now - action_started);
        // What the action did, for the daemon-track span (codes: 0 =
        // prefetch issued, 1 = empty, 2 = blocked, 3 = shed, 4 =
        // throttled, 5 = scrub).
        let mut obs_block = u64::MAX;
        let mut obs_code = 1u64;

        let candidate = if self.cfg.prefetch.enabled {
            match self.select_block(p) {
                Some(block) if self.prefetch_target_degraded(block, now) => {
                    // Graceful degradation: the device this block lives on
                    // is erroring or lagging. Leave the block to demand
                    // traffic, but keep the frontier moving — re-select
                    // skipping every degraded device so healthy disks
                    // still get prefetch.
                    self.rec.degraded_skips += 1;
                    self.select_block_past_degraded(p, now)
                }
                other => other,
            }
        } else {
            // Scrub-only daemon: no speculative fills.
            None
        };
        // Failover: with nothing of its own to prefetch, a survivor covers
        // the frontier of a crashed node that is due to rejoin. Inert
        // without a crash plan.
        let mut failover = false;
        let candidate = match candidate {
            None if self.crash.is_some() && self.cfg.prefetch.enabled => {
                let c = self.select_block_for_dead();
                failover = c.is_some();
                c
            }
            other => other,
        };
        // A poisoned block can never be fetched clean; selecting it would
        // spin the daemon on discard loops.
        let candidate = candidate.filter(|b| {
            self.integrity
                .as_ref()
                .is_none_or(|ig| !ig.poisoned.contains(b))
        });
        match candidate {
            Some(block) if self.admission_denies(block).is_some() => {
                // The admission controller refused the prefetch: out of
                // credits, the target queue is past its high-water mark,
                // or the prefetch partition is under pressure. Back off
                // like an empty action (cheap re-spins while idle).
                let deny = self.admission_denies(block).expect("checked in guard");
                self.rec.prefetches_throttled += 1;
                if deny == Deny::CachePressure {
                    self.rec.cache_high_water_hits += 1;
                }
                self.procs[p].last_action_empty = true;
                obs_block = block.index() as u64;
                obs_code = 4;
                let deny_code = match deny {
                    Deny::Credits => 0,
                    Deny::QueueDepth => 1,
                    Deny::CachePressure => 2,
                };
                self.obs_instant(
                    Track::Daemon(p as u16),
                    ObsKind::Throttle,
                    now,
                    obs_block,
                    deny_code,
                );
            }
            Some(block) => {
                self.procs[p].last_action_empty = false;
                match self.pool.try_reserve_prefetch(ProcId(p as u16), block) {
                    Ok(buf) => {
                        match self.fs.read(
                            now,
                            self.file,
                            block,
                            FetchKind::Prefetch,
                            ProcId(p as u16),
                        ) {
                            Ok(started) => {
                                self.pool.commit_prefetch(buf, block, SimTime::MAX);
                                self.consume_prefetch_credit();
                                self.rec.proc_prefetches[p] += 1;
                                self.rec
                                    .tl_prefetched
                                    .record(now, self.pool.prefetched_unused() as f64);
                                self.outstanding_io += 1;
                                self.rec
                                    .tl_outstanding_io
                                    .record(now, self.outstanding_io as f64);
                                self.note_started(block, started, sched);
                                if failover {
                                    self.crash
                                        .as_mut()
                                        .expect("failover without a crash layer")
                                        .redistributed_prefetches += 1;
                                }
                                obs_block = block.index() as u64;
                                obs_code = 0;
                                self.obs_instant(
                                    Track::Daemon(p as u16),
                                    ObsKind::PrefetchSubmit,
                                    now,
                                    obs_block,
                                    0,
                                );
                            }
                            Err(FsError::QueueFull { .. }) => {
                                // A bounded queue turned the prefetch
                                // away: drop it rather than displace
                                // demand traffic. The reservation was
                                // never committed, so the buffer is
                                // simply free again.
                                self.rec.prefetches_shed += 1;
                                self.procs[p].last_action_empty = true;
                                obs_block = block.index() as u64;
                                obs_code = 3;
                            }
                            Err(e) => panic!("policy block rejected by file system: {e:?}"),
                        }
                    }
                    Err(_) => {
                        self.rec.blocked_actions += 1;
                        obs_block = block.index() as u64;
                        obs_code = 2;
                    }
                }
            }
            None => {
                // No prefetch to do: let the scrubber use the idle slot.
                if self.scrub_attempt(p, sched) {
                    self.procs[p].last_action_empty = false;
                    obs_code = 5;
                } else {
                    self.rec.empty_actions += 1;
                    self.procs[p].last_action_empty = true;
                }
            }
        }
        if self.obs.is_some() {
            self.obs_span(
                Track::Daemon(p as u16),
                ObsKind::DaemonAction,
                action_started,
                now - action_started,
                obs_block,
                obs_code,
                ReadAttribution::default(),
            );
        }

        if self.procs[p].logical_wake.is_some() {
            self.resume(p, sched);
        } else if self.procs[p].idle_since.is_some() {
            self.maybe_start_action(p, sched);
        }
    }

    /// Does the admission controller refuse a prefetch of `block` right
    /// now? Always `None` unless admission is enabled. Device health is
    /// handled upstream: degraded devices are already skipped by
    /// re-selection ([`World::prefetch_target_degraded`]), so the
    /// controller adds the credit, queue-depth, and cache-pressure gates.
    fn admission_denies(&self, block: BlockId) -> Option<Deny> {
        let adm = self.admission.as_ref()?;
        if !adm.cfg.enabled {
            return None;
        }
        if adm.credits == 0 {
            return Some(Deny::Credits);
        }
        if let Some(disk) = self.fs.placement_disk(self.file, block, 0) {
            let d = &self.fs.disks().disks()[disk.index()];
            if d.queued() as u32 >= adm.cfg.queue_high_water {
                return Some(Deny::QueueDepth);
            }
        }
        if self.pool.pressure().occupancy() >= adm.cfg.cache_high_water {
            return Some(Deny::CachePressure);
        }
        None
    }

    /// Take one prefetch credit from the pool (no-op unless admission is
    /// enabled). The admission gate runs first, so a credit is always
    /// available here.
    fn consume_prefetch_credit(&mut self) {
        if let Some(adm) = &mut self.admission {
            if adm.cfg.enabled {
                debug_assert!(adm.credits > 0, "prefetch issued without a credit");
                adm.credits = adm.credits.saturating_sub(1);
            }
        }
    }

    /// Would this prefetch land on a device the health tracker currently
    /// classifies as degraded, quarantined, or behind an open breaker?
    /// Always false without an active fault layer.
    pub(super) fn prefetch_target_degraded(&self, block: BlockId, now: SimTime) -> bool {
        let Some(fs) = &self.faults else { return false };
        self.fs
            .placement_disk(self.file, block, 0)
            .is_some_and(|d| fs.health.is_degraded(d) || fs.health.avoid(d, now))
    }

    /// Second-chance selection once the primary candidate proved degraded:
    /// the same policy scan, but uncached blocks on degraded devices are
    /// passed over instead of selected. Runs only while the fault layer is
    /// active, so the fault-free path never pays for it.
    fn select_block_past_degraded(&mut self, p: usize, now: SimTime) -> Option<BlockId> {
        let Some(fault_state) = &self.faults else {
            return None;
        };
        let health = &fault_state.health;
        let fs = &self.fs;
        let file = self.file;
        let degraded = |block: BlockId| {
            fs.placement_disk(file, block, 0)
                .is_some_and(|d| health.is_degraded(d) || health.avoid(d, now))
        };
        match self.cfg.prefetch.policy {
            PolicyKind::Oracle => {
                let (string, frontier) = match &*self.workload {
                    Workload::Local(strings) => (&strings[p], self.procs[p].cursor.position()),
                    Workload::Global(s) => (s, self.global_cursor.position()),
                };
                let view = OracleView {
                    string,
                    frontier,
                    cross_portions: self.cfg.pattern.may_prefetch_across_portions(),
                    min_lead: self.cfg.prefetch.min_lead,
                };
                select_oracle_avoiding(&view, &self.pool, degraded)
            }
            PolicyKind::Obl { .. } | PolicyKind::PortionLearner { .. } => {
                let preds = self.predictors[p]
                    .as_ref()
                    .expect("online policy without predictor")
                    .predict(16);
                preds
                    .iter()
                    .copied()
                    .find(|&b| !self.pool.contains(b) && !degraded(b))
            }
        }
    }

    /// Pick the next block to prefetch on behalf of node `p`.
    pub(super) fn select_block(&mut self, p: usize) -> Option<BlockId> {
        match self.cfg.prefetch.policy {
            PolicyKind::Oracle => {
                let (string, frontier, hint) = match &*self.workload {
                    Workload::Local(strings) => (&strings[p], self.procs[p].cursor.position(), p),
                    Workload::Global(s) => (s, self.global_cursor.position(), 0),
                };
                let view = OracleView {
                    string,
                    frontier,
                    cross_portions: self.cfg.pattern.may_prefetch_across_portions(),
                    min_lead: self.cfg.prefetch.min_lead,
                };
                if self.oracle_hint_sound {
                    // Duplicate-free workload: the scan memo is sound and
                    // turns the per-action re-walk of the cached span into
                    // an amortized O(1) resume.
                    select_oracle_hinted(&view, &self.pool, &mut self.oracle_hints[hint])
                } else {
                    select_oracle(&view, &self.pool)
                }
            }
            PolicyKind::Obl { .. } | PolicyKind::PortionLearner { .. } => {
                let preds = self.predictors[p]
                    .as_ref()
                    .expect("online policy without predictor")
                    .predict(16);
                select_predicted(&preds, &self.pool)
            }
        }
    }
}
