//! User-process control flow: deciding the next operation, synchronization
//! gates, barrier arrivals, read completion, and process exit.

use super::*;

impl World {
    // ------------------------------------------------------------------
    // User-process control flow.
    // ------------------------------------------------------------------

    /// Decide the process's next operation: synchronize if a gate is due,
    /// then take the next access and issue the read; finish when the
    /// string is exhausted.
    pub(super) fn proceed_next(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        loop {
            if self.peek_access(p).is_none() {
                self.finish_proc(p, sched);
                return;
            }
            match self.sync_due(p) {
                Some(reason) => {
                    if self.arrive_barrier(p, reason, sched) {
                        // Blocked: resume via barrier release.
                        return;
                    }
                    // Own arrival completed the episode; re-check gates
                    // (another gate may be due immediately).
                }
                None => break,
            }
        }
        let access = self.take_access(p).expect("peeked access vanished");
        self.procs[p].cur_access = Some(access);
        self.issue_read(p, sched);
    }

    /// The next access this process would take, without consuming it.
    pub(super) fn peek_access(&self, p: usize) -> Option<Access> {
        match &*self.workload {
            Workload::Local(strings) => strings[p].get(self.procs[p].cursor.position()),
            Workload::Global(s) => s.get(self.global_cursor.position()),
        }
    }

    pub(super) fn take_access(&mut self, p: usize) -> Option<Access> {
        match &*self.workload {
            Workload::Local(strings) => self.procs[p].cursor.take(&strings[p]),
            Workload::Global(s) => self.global_cursor.take(s),
        }
    }

    /// Which synchronization gate, if any, must fire before the next take.
    pub(super) fn sync_due(&self, p: usize) -> Option<SyncReason> {
        let proc = &self.procs[p];
        match self.cfg.sync {
            SyncStyle::None => None,
            SyncStyle::BlocksPerProc(n) => {
                if proc.reads_done > 0
                    && proc.reads_done.is_multiple_of(n)
                    && proc.synced_at_reads != proc.reads_done
                {
                    Some(SyncReason::PerProcCount)
                } else {
                    None
                }
            }
            SyncStyle::BlocksTotal(n) => {
                let boundary = self.total_reads_done / n as u64;
                if boundary > proc.boundaries_passed {
                    Some(SyncReason::TotalCount)
                } else {
                    None
                }
            }
            SyncStyle::EachPortion => {
                let next = self.peek_access(p)?;
                if self.workload.is_global() {
                    (next.portion > self.global_portion_open).then_some(SyncReason::PortionBoundary)
                } else {
                    match proc.cur_portion {
                        Some(cur) if next.portion != cur => Some(SyncReason::PortionBoundary),
                        None => None, // first portion needs no gate
                        _ => None,
                    }
                }
            }
        }
    }

    /// Arrive at the barrier. Returns `true` if the process blocked (it
    /// will be resumed on release), `false` if its own arrival opened the
    /// barrier and it may continue immediately.
    pub(super) fn arrive_barrier(
        &mut self,
        p: usize,
        reason: SyncReason,
        sched: &mut Scheduler<Ev>,
    ) -> bool {
        let now = sched.now();
        // Mark the gate as passed *at arrival* so release re-checks don't
        // re-trigger the same gate.
        {
            let next_portion = self.peek_access(p).map(|a| a.portion);
            let proc = &mut self.procs[p];
            match reason {
                SyncReason::PerProcCount => proc.synced_at_reads = proc.reads_done,
                SyncReason::TotalCount => proc.boundaries_passed += 1,
                SyncReason::PortionBoundary => {
                    // Local gate: record that this process has moved on to
                    // the next portion. (The global gate clears when the
                    // barrier opens and advances `global_portion_open`.)
                    if let Some(portion) = next_portion {
                        proc.cur_portion = Some(portion);
                    }
                }
            }
        }
        let opened = self.barrier.arrive(ProcId(p as u16), now);
        self.rec
            .tl_barrier
            .record(now, self.barrier.waiting() as f64);
        match opened {
            Some(open) => {
                self.after_barrier_open(p, reason, sched);
                for r in open.released {
                    self.wake(r.index(), sched);
                }
                false
            }
            None => {
                let proc = &mut self.procs[p];
                proc.state = PState::AtBarrier;
                proc.expected_wake = None;
                self.idle_begin(p, sched);
                true
            }
        }
    }

    /// Bookkeeping when a barrier episode opens (run once, by the
    /// completing arrival or departure).
    pub(super) fn after_barrier_open(
        &mut self,
        _completer: usize,
        reason: SyncReason,
        sched: &mut Scheduler<Ev>,
    ) {
        let _ = sched;
        if reason == SyncReason::PortionBoundary && self.workload.is_global() {
            if let Workload::Global(s) = &*self.workload {
                if let Some(next) = s.get(self.global_cursor.position()) {
                    self.global_portion_open = next.portion;
                }
            }
        }
    }

    /// The read returned: account it, then compute or continue.
    pub(super) fn read_finished(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        self.procs[p].pending_ev = None;
        let access = self.procs[p].cur_access.expect("finish without access");
        if let Some(buf) = self.procs[p].copying_buf.take() {
            self.pool.unpin(buf);
        }
        // Close the final attribution interval (the copy, or the wait on a
        // failed read); the components now telescope to the read time.
        self.attr_close(p, now, Component::Overhead);
        let read_time = now - self.procs[p].read_start;
        debug_assert_eq!(
            self.procs[p].attr.sum(),
            read_time.as_nanos(),
            "attribution components must sum to the read time (proc {p})"
        );
        self.rec.reads.record(read_time);
        self.rec.read_times.record(read_time);
        self.rec.proc_reads[p].record(read_time);
        if self.procs[p].attr.ns[Component::HedgeWait as usize] > 0 {
            self.rec.hedged_read_times.record(read_time);
        }
        if matches!(
            self.procs[p].cur_outcome,
            Some(ReadOutcome::ReadyHit | ReadOutcome::UnreadyHit)
        ) {
            self.rec.proc_hits[p] += 1;
        }
        if self.procs[p].cur_outcome == Some(ReadOutcome::Failed) {
            if let Some(ig) = &mut self.integrity {
                ig.failed_reads += 1;
            }
        }
        let outcome = self.procs[p]
            .cur_outcome
            .expect("read finished without classification");
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent {
                requested: self.procs[p].read_start,
                completed: now,
                proc: ProcId(p as u16),
                block: access.block,
                outcome,
                attr: self.procs[p].attr,
            });
        }
        if self.obs.is_some() {
            let start = self.procs[p].read_start;
            let attr = self.procs[p].attr;
            self.obs_span(
                Track::Proc(p as u16),
                ObsKind::Read,
                start,
                read_time,
                access.block.index() as u64,
                outcome_code(outcome),
                attr,
            );
        }
        self.procs[p].reads_done += 1;
        self.total_reads_done += 1;
        self.procs[p].cur_portion = Some(access.portion);
        if let Some(pred) = &mut self.predictors[p] {
            pred.observe(access.block);
        }
        if self.cfg.compute_mean.is_zero() {
            self.procs[p].state = PState::Running;
            self.proceed_next(p, sched);
        } else {
            let delay = self.procs[p].rng.exponential(self.cfg.compute_mean);
            self.procs[p].state = PState::Computing;
            self.procs[p].pending_ev =
                Some(sched.schedule_in(delay, Ev::ComputeDone(ProcId(p as u16))));
        }
    }

    /// Complete the current read as *failed*: the block is poisoned, so
    /// the process receives a typed [`crate::integrity::IntegrityError`]
    /// instead of data. The access is consumed (the modeled application
    /// handles the error and moves on), so runs always terminate.
    pub(super) fn fail_read(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        if let Some(ig) = &mut self.integrity {
            ig.read_errors[p] = None;
        }
        debug_assert!(self.procs[p].copying_buf.is_none());
        self.procs[p].cur_outcome = Some(ReadOutcome::Failed);
        self.read_finished(p, sched);
    }

    pub(super) fn finish_proc(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let proc = &mut self.procs[p];
        debug_assert!(proc.finished_at.is_none());
        proc.state = PState::Done;
        proc.finished_at = Some(now);
        self.finished += 1;
        let departed = self.barrier.depart(ProcId(p as u16), now);
        self.rec
            .tl_barrier
            .record(now, self.barrier.waiting() as f64);
        if let Some(open) = departed {
            // A departing straggler can complete an episode; the portion
            // gate, if any, advances with the released processes' rechecks.
            if self.workload.is_global() {
                if let Workload::Global(s) = &*self.workload {
                    if let Some(next) = s.get(self.global_cursor.position()) {
                        self.global_portion_open = self.global_portion_open.max(next.portion);
                    }
                }
            }
            for r in open.released {
                self.wake(r.index(), sched);
            }
        }
    }
}
