//! # rt-core — the RAPID Transit testbed
//!
//! The paper's contribution: a parallel file system with an interleaved
//! block cache and **idle-time prefetching**, driven by synthetic parallel
//! workloads, measured end to end.
//!
//! * [`config`] — experiment descriptions and the NUMA cost model.
//! * [`world`] — the event-driven machine: user processes (read → compute →
//!   synchronize), the read path through the shared cache, and the per-node
//!   prefetch daemon that runs only during user idle time and charges
//!   overrun when it overshoots.
//! * [`policy`] — prefetch block selection: the paper's optimistic oracle
//!   (with portion feasibility limits and the §V-E minimum prefetch lead)
//!   plus on-line predictor policies.
//! * [`barrier`] — the synchronization substrate with per-arrival wait
//!   accounting.
//! * [`experiment`] — runners: single runs, base/prefetch pairs, the full
//!   §IV-D grid, and a thread-parallel sweep.
//! * [`metrics`] / [`report`] — every measure of §IV-C and the table
//!   formatting used to regenerate the paper's figures.
//!
//! ```
//! use rt_core::experiment::{run_pair, ExperimentConfig};
//! use rt_patterns::{AccessPattern, SyncStyle};
//!
//! let mut cfg = ExperimentConfig::paper_default(
//!     AccessPattern::GlobalWholeFile, SyncStyle::BlocksPerProc(10));
//! // Shrink the machine so the doctest runs instantly.
//! cfg.procs = 4;
//! cfg.disks = 4;
//! cfg.workload.procs = 4;
//! cfg.workload.file_blocks = 200;
//! cfg.workload.total_reads = 200;
//! let pair = run_pair(&cfg);
//! assert!(pair.prefetch.hit_ratio > pair.base.hit_ratio);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod barrier;
pub mod config;
pub mod experiment;
pub mod faults;
pub mod health;
pub mod integrity;
pub mod metrics;
pub mod policy;
pub mod report;
pub mod sweeps;
pub mod trace;
pub mod world;

pub use admission::AdmissionConfig;
pub use config::{ConfigError, CostModel, ExperimentConfig, PolicyKind, PrefetchConfig};
pub use experiment::{
    paper_grid, run_experiment, run_experiment_observed, run_experiment_traced, run_pair,
    run_pairs_parallel, run_replicas_forked, RunHandle,
};
pub use faults::{
    parse_fault_spec, parse_fault_specs, DegradeConfig, FaultConfig, FaultSpecError, RetryPolicy,
};
pub use health::HealthTracker;
pub use integrity::{IntegrityConfig, IntegrityError, QuarantineConfig};
pub use metrics::{
    coefficient_of_variation, improvement, FaultMetrics, IntegrityMetrics, OverloadMetrics,
    ProcMetrics, RunMetrics, RunPair,
};
pub use sweeps::{
    buffer_sweep_over, compute_sweep_over, lead_baselines_for, lead_sweep_over, BufferPoint,
    ComputePoint, LeadPoint,
};
pub use trace::{replay_obl, ReadOutcome, Trace, TraceEvent};
pub use world::{Ev, ObsConfig, ObsData, World};

// Re-export the substrate crates so downstream users need only rt-core.
pub use rt_cache as cache;
pub use rt_disk as disk;
pub use rt_obs as obs;
pub use rt_patterns as patterns;
pub use rt_sim as sim;
