//! Experiment configuration: machine geometry, cost model, workload, and
//! prefetching parameters (§IV-D of the paper).

use crate::admission::AdmissionConfig;
use crate::faults::FaultConfig;
use crate::integrity::IntegrityConfig;
use rt_cache::Replacement;
use rt_disk::{Discipline, FaultKind, Service};
use rt_fs::Striping;
use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rt_sim::SimDuration;
use std::fmt;

/// Time costs of file-system operations on the simulated NUMA machine.
///
/// The paper's testbed ran on real Butterfly Plus hardware; the absolute
/// costs below are calibrated so the derived quantities land in the ranges
/// the paper reports (prefetch actions averaging 3–31 ms including lock
/// contention, overruns of 1–25 ms, ready-hit read times well under the
/// 30 ms disk time). All shared-structure operations hold one global
/// simulated lock, so their *effective* costs grow under contention exactly
/// as the paper describes (§V-D: remote references and memory contention
/// made the initial implementation slow).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Lock hold time for the lookup on the read path (hash probe in
    /// shared memory).
    pub lookup_overhead: SimDuration,
    /// Additional lock hold time on a miss: RU-set manipulation, buffer
    /// allocation, and enqueuing the disk request — the "several accesses
    /// to data structures in slower remote shared memory" of §V-D. When a
    /// block was prefetched, this work happened off the critical path
    /// during idle time, which is where prefetching's per-request saving
    /// comes from even when the disks are saturated.
    pub miss_overhead: SimDuration,
    /// Copying one block from a buffer on the requesting node.
    pub copy_local: SimDuration,
    /// Copying one block from a remote node's buffer (NUMA penalty).
    pub copy_remote: SimDuration,
    /// Lock hold time for one prefetch action that finds a candidate
    /// (block selection + buffer location + I/O initiation).
    pub action_hold: SimDuration,
    /// Lock hold time for a prefetch action that finds nothing to do
    /// (selection only).
    pub action_fail_hold: SimDuration,
}

impl CostModel {
    /// Costs calibrated against the paper's reported ranges.
    pub fn paper() -> Self {
        CostModel {
            lookup_overhead: SimDuration::from_micros(300),
            miss_overhead: SimDuration::from_micros(1000),
            copy_local: SimDuration::from_micros(500),
            copy_remote: SimDuration::from_micros(800),
            action_hold: SimDuration::from_micros(1200),
            action_fail_hold: SimDuration::from_micros(500),
        }
    }
}

/// How the prefetcher chooses blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's optimistic oracle: the reference string is supplied in
    /// advance; the policy never fetches a block that is not needed, but
    /// respects feasibility limits (no prefetching past an unestablished
    /// random portion).
    Oracle,
    /// Extension: on-the-fly one-block lookahead from each process's
    /// locally observed stream, generalized to `depth` blocks.
    Obl {
        /// How many successor blocks one observation predicts.
        depth: u32,
    },
    /// Extension: on-the-fly portion learner (detects fixed portion length
    /// and stride before predicting across boundaries).
    PortionLearner {
        /// Completed portions that must agree before extrapolating.
        confidence: u32,
    },
}

/// Prefetching parameters.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// Master switch. When off, the cache has only the per-node RU-set
    /// buffers and no prefetch activity occurs.
    pub enabled: bool,
    /// Prefetch buffers per node (the paper uses 3).
    pub buffers_per_proc: u16,
    /// Global cap on prefetched-but-unused blocks, per node (the paper
    /// uses 3, i.e. 60 for 20 nodes).
    pub global_cap_per_proc: u16,
    /// Minimum prefetch lead (§V-E): do not select blocks closer than this
    /// many string positions ahead of the demand frontier, relaxed near the
    /// end of the string. Zero disables the restriction.
    pub min_lead: u32,
    /// Minimum prefetch time (§V-D): do not start an action when the
    /// estimated remaining idle time is below this. Zero disables.
    pub min_action_time: SimDuration,
    /// Block-selection policy.
    pub policy: PolicyKind,
    /// Allow evicting prefetched-but-unused blocks. The paper's oracle
    /// never errs, so it protects them; fallible on-line predictors need
    /// the relaxation or their wrong guesses permanently wedge the
    /// prefetch partition.
    pub evict_unused: bool,
}

impl PrefetchConfig {
    /// Prefetching disabled (the paper's base case).
    pub fn disabled() -> Self {
        PrefetchConfig {
            enabled: false,
            buffers_per_proc: 0,
            global_cap_per_proc: 0,
            min_lead: 0,
            min_action_time: SimDuration::ZERO,
            policy: PolicyKind::Oracle,
            evict_unused: false,
        }
    }

    /// The paper's prefetching configuration: oracle policy, 3 buffers per
    /// node, global cap of 3 per node, no lead, no minimum action time.
    pub fn paper() -> Self {
        PrefetchConfig {
            enabled: true,
            buffers_per_proc: 3,
            global_cap_per_proc: 3,
            min_lead: 0,
            min_action_time: SimDuration::ZERO,
            policy: PolicyKind::Oracle,
            evict_unused: false,
        }
    }

    /// A configuration for on-line predictor policies: like
    /// [`PrefetchConfig::paper`] but with the given policy and the
    /// unused-prefetch eviction relaxation that fallible predictors need.
    pub fn online(policy: PolicyKind) -> Self {
        PrefetchConfig {
            policy,
            evict_unused: true,
            ..PrefetchConfig::paper()
        }
    }
}

/// A complete experiment description. Two runs with equal configs produce
/// identical results.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Processor count (one user process per node). The paper uses 20.
    pub procs: u16,
    /// Disk count (one per node in the paper).
    pub disks: u16,
    /// Disk service model (the paper: fixed 30 ms).
    pub service: Service,
    /// Disk queue discipline (the paper: FCFS; demand-priority is an
    /// extension ablation).
    pub discipline: Discipline,
    /// How the workload file is laid out (the paper: interleaved round-
    /// robin over all disks; contiguous-on-one-disk is the traditional
    /// baseline that motivates parallel I/O in §II).
    pub striping: Striping,
    /// Workload geometry (file size, total reads, portion shapes).
    pub workload: WorkloadParams,
    /// Which of the six access patterns to run.
    pub pattern: AccessPattern,
    /// Synchronization style.
    pub sync: SyncStyle,
    /// Mean of the exponential per-block computation delay. The paper uses
    /// 30 ms (10 ms for `lw`) in balanced runs and 0 in I/O-bound runs.
    pub compute_mean: SimDuration,
    /// Demand (RU-set) buffers per node. The paper uses 1.
    pub ru_set_size: u16,
    /// Demand-buffer replacement policy (the paper: per-processor RU sets;
    /// global LRU is an extension ablation).
    pub replacement: Replacement,
    /// Prefetching parameters.
    pub prefetch: PrefetchConfig,
    /// Cost model.
    pub costs: CostModel,
    /// Fault-injection scenario ([`FaultConfig::none`] by default — with
    /// an empty plan the run is event-for-event identical to a build
    /// without the fault subsystem).
    pub faults: FaultConfig,
    /// Bound on each device queue's waiting requests (`None` — the
    /// default — keeps the paper's unbounded queues). When set,
    /// submissions past the bound are rejected: a rejected demand read
    /// sheds a queued prefetch or parks until the device drains; a
    /// rejected prefetch is dropped.
    pub queue_depth: Option<u32>,
    /// Prefetch admission controller ([`AdmissionConfig::off`] by
    /// default — a disabled controller is event-for-event identical to a
    /// build without the admission subsystem).
    pub admission: AdmissionConfig,
    /// Data-integrity behaviour: checksum verification at fill, the
    /// idle-time scrubber, and the device quarantine lifecycle. The
    /// default is inert; verification is forced on whenever the fault
    /// plan schedules a corrupt window.
    pub integrity: IntegrityConfig,
    /// Master random seed.
    pub seed: u64,
}

/// An inconsistency in an [`ExperimentConfig`], found by
/// [`ExperimentConfig::validate`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `procs == 0`.
    NoProcessors,
    /// `disks == 0`.
    NoDisks,
    /// The workload's processor count differs from the machine's.
    WorkloadProcMismatch {
        /// Machine processor count.
        machine: u16,
        /// Workload processor count.
        workload: u16,
    },
    /// `ru_set_size == 0`.
    NoRuSet,
    /// The synchronization style cannot be used with the access pattern
    /// (the paper's `lw` pattern has no portion boundaries to sync on).
    InvalidSync {
        /// The offending pattern.
        pattern: AccessPattern,
        /// The offending style.
        sync: SyncStyle,
    },
    /// Prefetching is enabled but no prefetch buffers are configured.
    NoPrefetchBuffers,
    /// A fault plan entry names a disk the machine does not have.
    FaultDiskOutOfRange {
        /// The disk named by the plan entry.
        disk: u16,
        /// The machine's disk count.
        disks: u16,
    },
    /// A flaky-fault probability is outside `[0, 1)`.
    InvalidFaultProbability(f64),
    /// A straggler slowdown factor is not positive.
    InvalidSlowdownFactor(f64),
    /// An outage never repairs and the file has no replicas to redirect
    /// to: every read of the dead device's blocks would retry forever.
    UnrecoverableOutage {
        /// The permanently dead disk.
        disk: u16,
    },
    /// Replication requires the interleaved layout (replicas are rotated
    /// interleaves).
    ReplicasNeedInterleaving,
    /// `queue_depth` is `Some(0)`: a zero-depth queue could never accept
    /// a second request while one is in service.
    ZeroQueueDepth,
    /// Admission is enabled with zero prefetch credits: the daemon could
    /// never prefetch at all (disable prefetching instead).
    ZeroPrefetchCredits,
    /// Admission is enabled with a cache high-water mark that is not a
    /// positive finite fraction.
    InvalidCacheHighWater(f64),
    /// The quarantine EWMA smoothing factor is outside `(0, 1]`.
    InvalidQuarantineAlpha(f64),
    /// The quarantine threshold is not a positive finite value.
    InvalidQuarantineThreshold(f64),
    /// A crash spec names a node the machine does not have.
    CrashNodeOutOfRange {
        /// The node named by the crash spec.
        node: u16,
        /// The machine's processor count.
        procs: u16,
    },
    /// A crash spec's rejoin time is not after its crash time.
    CrashRejoinNotAfter {
        /// The offending node.
        node: u16,
    },
    /// Two crash specs name the same node (one crash per node keeps the
    /// schedule unambiguous — a rejoined node stays up).
    DuplicateCrashNode {
        /// The node crashed twice.
        node: u16,
    },
    /// The hedge delay is zero: every demand fetch would duplicate
    /// immediately, doubling load instead of trimming the tail.
    ZeroHedgeDelay,
    /// The adaptive hedge multiplier is not > 1.0 (hedging below the
    /// typical service time duplicates nearly every fetch).
    InvalidHedgeMultiplier(f64),
    /// Hedging is configured but the file has no replicas to hedge to.
    HedgeNeedsReplicas,
    /// The retry-budget refill fraction is outside `(0, 1]`.
    InvalidBudgetRefill(f64),
    /// The retry-budget capacity is zero: no retry or hedge could ever
    /// launch (disable the timeout/hedge instead).
    ZeroBudgetCapacity,
    /// The breaker EWMA smoothing factor is outside `(0, 1]`.
    InvalidBreakerAlpha(f64),
    /// The breaker error threshold is not in `(0, 1]` (the error EWMA
    /// never exceeds 1, so a larger threshold could never trip).
    InvalidBreakerThreshold(f64),
    /// A breaker window (hold or half-open) is zero: the lifecycle would
    /// degenerate (a zero hold never skips, a zero half-open never
    /// probes).
    ZeroBreakerWindow,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoProcessors => write!(f, "need at least one processor"),
            ConfigError::NoDisks => write!(f, "need at least one disk"),
            ConfigError::WorkloadProcMismatch { machine, workload } => write!(
                f,
                "workload and machine disagree on processor count \
                 (machine {machine}, workload {workload})"
            ),
            ConfigError::NoRuSet => write!(f, "each node needs an RU set"),
            ConfigError::InvalidSync { pattern, sync } => write!(
                f,
                "synchronization style invalid for this pattern (lw + portion): \
                 {pattern} with {sync}"
            ),
            ConfigError::NoPrefetchBuffers => {
                write!(f, "prefetching enabled without prefetch buffers")
            }
            ConfigError::FaultDiskOutOfRange { disk, disks } => write!(
                f,
                "fault plan names disk {disk} but the machine has {disks} disks"
            ),
            ConfigError::InvalidFaultProbability(p) => {
                write!(f, "flaky fault probability {p} outside [0, 1)")
            }
            ConfigError::InvalidSlowdownFactor(x) => {
                write!(f, "straggler slowdown factor {x} must be > 0")
            }
            ConfigError::UnrecoverableOutage { disk } => write!(
                f,
                "disk {disk} fails forever and the file has no replicas: \
                 reads of its blocks could never complete"
            ),
            ConfigError::ReplicasNeedInterleaving => {
                write!(f, "file replication requires interleaved striping")
            }
            ConfigError::ZeroQueueDepth => {
                write!(f, "queue depth bound must be at least 1")
            }
            ConfigError::ZeroPrefetchCredits => {
                write!(f, "admission enabled with zero prefetch credits")
            }
            ConfigError::InvalidCacheHighWater(x) => {
                write!(
                    f,
                    "cache high-water mark {x} must be a positive finite fraction"
                )
            }
            ConfigError::InvalidQuarantineAlpha(x) => {
                write!(f, "quarantine EWMA alpha {x} outside (0, 1]")
            }
            ConfigError::InvalidQuarantineThreshold(x) => {
                write!(f, "quarantine threshold {x} must be positive and finite")
            }
            ConfigError::CrashNodeOutOfRange { node, procs } => write!(
                f,
                "crash spec names node {node} but the machine has {procs} processors"
            ),
            ConfigError::CrashRejoinNotAfter { node } => {
                write!(f, "node {node}'s rejoin time must be after its crash time")
            }
            ConfigError::DuplicateCrashNode { node } => {
                write!(f, "node {node} is scheduled to crash more than once")
            }
            ConfigError::ZeroHedgeDelay => {
                write!(f, "hedge delay must be positive")
            }
            ConfigError::InvalidHedgeMultiplier(x) => {
                write!(f, "hedge multiplier {x} must be finite and > 1.0")
            }
            ConfigError::HedgeNeedsReplicas => {
                write!(f, "hedged reads need at least one replica to hedge to")
            }
            ConfigError::InvalidBudgetRefill(x) => {
                write!(f, "retry-budget refill fraction {x} outside (0, 1]")
            }
            ConfigError::ZeroBudgetCapacity => {
                write!(f, "retry-budget capacity must be at least 1")
            }
            ConfigError::InvalidBreakerAlpha(x) => {
                write!(f, "breaker EWMA alpha {x} outside (0, 1]")
            }
            ConfigError::InvalidBreakerThreshold(x) => {
                write!(f, "breaker error threshold {x} outside (0, 1]")
            }
            ConfigError::ZeroBreakerWindow => {
                write!(f, "breaker hold and half-open windows must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ExperimentConfig {
    /// The paper's configuration for a given pattern and synchronization
    /// style, with prefetching **disabled** (flip `prefetch` to enable):
    /// 20 processors, 20 disks, 30 ms disks, 2000-block file, 2000 total
    /// reads, balanced compute (30 ms mean; 10 ms for `lw`).
    pub fn paper_default(pattern: AccessPattern, sync: SyncStyle) -> Self {
        let compute = if pattern == AccessPattern::LocalWholeFile {
            SimDuration::from_millis(10)
        } else {
            SimDuration::from_millis(30)
        };
        ExperimentConfig {
            procs: 20,
            disks: 20,
            service: Service::paper(),
            discipline: Discipline::Fifo,
            striping: Striping::Interleaved,
            workload: WorkloadParams::paper(),
            pattern,
            sync,
            compute_mean: compute,
            ru_set_size: 1,
            replacement: Replacement::RuSet,
            prefetch: PrefetchConfig::disabled(),
            costs: CostModel::paper(),
            faults: FaultConfig::none(),
            queue_depth: None,
            admission: AdmissionConfig::off(),
            integrity: IntegrityConfig::default(),
            seed: 0x5241_5049_4454,
        }
    }

    /// The same configuration with zero compute per block (the paper's
    /// I/O-bound endpoint of the workload spectrum).
    pub fn paper_io_bound(pattern: AccessPattern, sync: SyncStyle) -> Self {
        ExperimentConfig {
            compute_mean: SimDuration::ZERO,
            ..Self::paper_default(pattern, sync)
        }
    }

    /// The §V-E lead-sweep configuration: local patterns read the whole
    /// file per process (40 000 total reads); global patterns keep the grid
    /// shape. `min_lead` is set on the prefetch config.
    pub fn paper_lead(pattern: AccessPattern, min_lead: u32) -> Self {
        let mut cfg = Self::paper_default(pattern, SyncStyle::BlocksPerProc(10));
        if pattern.is_local() {
            cfg.workload = WorkloadParams::paper_lead_local();
        }
        cfg.prefetch = PrefetchConfig {
            min_lead,
            ..PrefetchConfig::paper()
        };
        cfg
    }

    /// A short human-readable label for reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}ms{}",
            self.pattern,
            self.sync,
            self.compute_mean.as_millis_f64(),
            if self.prefetch.enabled { "/pf" } else { "" }
        )
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.procs == 0 {
            return Err(ConfigError::NoProcessors);
        }
        if self.disks == 0 {
            return Err(ConfigError::NoDisks);
        }
        if self.workload.procs != self.procs {
            return Err(ConfigError::WorkloadProcMismatch {
                machine: self.procs,
                workload: self.workload.procs,
            });
        }
        if self.ru_set_size == 0 {
            return Err(ConfigError::NoRuSet);
        }
        if !self.sync.valid_for(self.pattern) {
            return Err(ConfigError::InvalidSync {
                pattern: self.pattern,
                sync: self.sync,
            });
        }
        if self.prefetch.enabled && self.prefetch.buffers_per_proc == 0 {
            return Err(ConfigError::NoPrefetchBuffers);
        }
        if self.faults.replicas > 0 && self.striping != Striping::Interleaved {
            return Err(ConfigError::ReplicasNeedInterleaving);
        }
        if self.queue_depth == Some(0) {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.admission.enabled {
            if self.admission.prefetch_credits == 0 {
                return Err(ConfigError::ZeroPrefetchCredits);
            }
            let hw = self.admission.cache_high_water;
            if !(hw.is_finite() && hw > 0.0) {
                return Err(ConfigError::InvalidCacheHighWater(hw));
            }
        }
        for entry in self.faults.plan.entries() {
            if entry.disk.0 >= self.disks {
                return Err(ConfigError::FaultDiskOutOfRange {
                    disk: entry.disk.0,
                    disks: self.disks,
                });
            }
            match entry.kind {
                FaultKind::Flaky { probability } | FaultKind::Corrupt { probability }
                    if !(0.0..1.0).contains(&probability) =>
                {
                    return Err(ConfigError::InvalidFaultProbability(probability));
                }
                FaultKind::Slowdown { factor } if !(factor.is_finite() && factor > 0.0) => {
                    return Err(ConfigError::InvalidSlowdownFactor(factor));
                }
                FaultKind::Outage if entry.until.is_none() && self.faults.replicas == 0 => {
                    return Err(ConfigError::UnrecoverableOutage { disk: entry.disk.0 });
                }
                _ => {}
            }
        }
        let mut crashed_nodes = Vec::new();
        for spec in self.faults.crashes.entries() {
            if spec.node >= self.procs {
                return Err(ConfigError::CrashNodeOutOfRange {
                    node: spec.node,
                    procs: self.procs,
                });
            }
            if spec.rejoin.is_some_and(|r| r <= spec.at) {
                return Err(ConfigError::CrashRejoinNotAfter { node: spec.node });
            }
            if crashed_nodes.contains(&spec.node) {
                return Err(ConfigError::DuplicateCrashNode { node: spec.node });
            }
            crashed_nodes.push(spec.node);
        }
        if self.integrity.active_with(&self.faults.plan) {
            let q = self.integrity.quarantine;
            if !(q.alpha.is_finite() && q.alpha > 0.0 && q.alpha <= 1.0) {
                return Err(ConfigError::InvalidQuarantineAlpha(q.alpha));
            }
            if !(q.threshold.is_finite() && q.threshold > 0.0) {
                return Err(ConfigError::InvalidQuarantineThreshold(q.threshold));
            }
        }
        if let Some(delay) = self.faults.hedge.delay {
            if delay == SimDuration::ZERO {
                return Err(ConfigError::ZeroHedgeDelay);
            }
            let m = self.faults.hedge.multiplier;
            if !(m.is_finite() && m > 1.0) {
                return Err(ConfigError::InvalidHedgeMultiplier(m));
            }
            if self.faults.replicas == 0 {
                return Err(ConfigError::HedgeNeedsReplicas);
            }
        }
        if let Some(capacity) = self.faults.budget.capacity {
            if capacity == 0 {
                return Err(ConfigError::ZeroBudgetCapacity);
            }
            let r = self.faults.budget.refill;
            if !(r.is_finite() && r > 0.0 && r <= 1.0) {
                return Err(ConfigError::InvalidBudgetRefill(r));
            }
        }
        if self.faults.breaker.enabled {
            let b = self.faults.breaker;
            if !(b.alpha.is_finite() && b.alpha > 0.0 && b.alpha <= 1.0) {
                return Err(ConfigError::InvalidBreakerAlpha(b.alpha));
            }
            if !(b.error_threshold.is_finite()
                && b.error_threshold > 0.0
                && b.error_threshold <= 1.0)
            {
                return Err(ConfigError::InvalidBreakerThreshold(b.error_threshold));
            }
            if b.hold == SimDuration::ZERO || b.half_open == SimDuration::ZERO {
                return Err(ConfigError::ZeroBreakerWindow);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let c = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        assert_eq!(c.procs, 20);
        assert_eq!(c.disks, 20);
        assert_eq!(c.workload.total_reads, 2000);
        assert_eq!(c.compute_mean, SimDuration::from_millis(30));
        assert!(!c.prefetch.enabled);
        c.validate().unwrap();
    }

    #[test]
    fn lw_uses_10ms_compute() {
        let c = ExperimentConfig::paper_default(AccessPattern::LocalWholeFile, SyncStyle::None);
        assert_eq!(c.compute_mean, SimDuration::from_millis(10));
    }

    #[test]
    fn io_bound_has_zero_compute() {
        let c = ExperimentConfig::paper_io_bound(AccessPattern::GlobalWholeFile, SyncStyle::None);
        assert_eq!(c.compute_mean, SimDuration::ZERO);
    }

    #[test]
    fn lead_config_scales_local_patterns() {
        let c = ExperimentConfig::paper_lead(AccessPattern::LocalFixedPortions, 30);
        assert_eq!(c.workload.total_reads, 40_000);
        assert_eq!(c.prefetch.min_lead, 30);
        assert!(c.prefetch.enabled);
        let g = ExperimentConfig::paper_lead(AccessPattern::GlobalWholeFile, 30);
        assert_eq!(g.workload.total_reads, 2000);
    }

    #[test]
    fn validate_rejects_lw_portion_sync() {
        let err =
            ExperimentConfig::paper_default(AccessPattern::LocalWholeFile, SyncStyle::EachPortion)
                .validate()
                .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidSync { .. }));
        assert!(err.to_string().contains("lw + portion"));
    }

    #[test]
    fn validate_rejects_bufferless_prefetch() {
        let mut c =
            ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);
        c.prefetch.enabled = true;
        c.prefetch.buffers_per_proc = 0;
        let err = c.validate().unwrap_err();
        assert_eq!(err, ConfigError::NoPrefetchBuffers);
        assert!(err.to_string().contains("without prefetch buffers"));
    }

    #[test]
    fn validate_rejects_mismatched_workload() {
        let mut c =
            ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);
        c.procs = 16;
        let err = c.validate().unwrap_err();
        assert!(matches!(
            err,
            ConfigError::WorkloadProcMismatch {
                machine: 16,
                workload: 20
            }
        ));
    }

    #[test]
    fn validate_checks_fault_plan() {
        use crate::faults::parse_fault_specs;
        let base = ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);

        let mut c = base.clone();
        c.faults.plan = parse_fault_specs("straggler:25:x4").unwrap();
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::FaultDiskOutOfRange {
                disk: 25,
                disks: 20
            }
        ));

        // A never-repaired outage needs a replica to redirect to.
        let mut c = base.clone();
        c.faults.plan = parse_fault_specs("fail:3@5s").unwrap();
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::UnrecoverableOutage { disk: 3 }
        ));
        c.faults.replicas = 1;
        c.validate().unwrap();

        // Replication requires the interleaved layout.
        let mut c = base.clone();
        c.faults.replicas = 1;
        c.striping = Striping::OnDisk(0);
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::ReplicasNeedInterleaving
        );

        // A repairing outage is fine without replicas.
        let mut c = base;
        c.faults.plan = parse_fault_specs("fail:3@5s-9s").unwrap();
        c.validate().unwrap();
    }

    #[test]
    fn validate_checks_crash_plan() {
        use crate::faults::parse_all_fault_specs;
        let base = ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);

        let mut c = base.clone();
        c.faults.crashes = parse_all_fault_specs("crash:20@1s").unwrap().1;
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::CrashNodeOutOfRange {
                node: 20,
                procs: 20
            }
        ));

        let mut c = base.clone();
        c.faults.crashes = parse_all_fault_specs("crash:3@1s, crash:3@2s").unwrap().1;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::DuplicateCrashNode { node: 3 }
        );

        // The parser already orders rejoin after crash; validate re-checks
        // hand-built plans.
        let mut c = base.clone();
        let mut crashes = crate::faults::CrashPlan::none();
        crashes.push(crate::faults::CrashSpec {
            node: 5,
            at: rt_sim::SimTime::ZERO + SimDuration::from_secs(2),
            rejoin: Some(rt_sim::SimTime::ZERO + SimDuration::from_secs(1)),
        });
        c.faults.crashes = crashes;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::CrashRejoinNotAfter { node: 5 }
        );

        let mut c = base;
        c.faults.crashes = parse_all_fault_specs("crash:3@1s:rejoin@2s, crash:7@500ms")
            .unwrap()
            .1;
        c.validate().unwrap();
    }

    #[test]
    fn validate_checks_overload_knobs() {
        let base = ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);
        assert!(base.queue_depth.is_none());
        assert!(!base.admission.enabled);

        let mut c = base.clone();
        c.queue_depth = Some(0);
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroQueueDepth);
        c.queue_depth = Some(1);
        c.validate().unwrap();

        let mut c = base.clone();
        c.admission = crate::admission::AdmissionConfig::on(0);
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroPrefetchCredits);

        let mut c = base;
        c.admission = crate::admission::AdmissionConfig::on(8);
        c.admission.cache_high_water = f64::NAN;
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::InvalidCacheHighWater(_)
        ));
        c.admission.cache_high_water = 0.9;
        c.validate().unwrap();
    }

    #[test]
    fn validate_checks_tail_knobs() {
        use crate::faults::{BreakerConfig, HedgeConfig, RetryBudgetConfig};
        let base = ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);

        // Hedge: needs a positive delay, a sane multiplier, and replicas.
        let mut c = base.clone();
        c.faults.hedge.delay = Some(SimDuration::ZERO);
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroHedgeDelay);
        c.faults.hedge = HedgeConfig {
            delay: Some(SimDuration::from_millis(60)),
            multiplier: 1.0,
        };
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::InvalidHedgeMultiplier(_)
        ));
        c.faults.hedge.multiplier = 2.0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::HedgeNeedsReplicas);
        c.faults.replicas = 1;
        c.validate().unwrap();

        // Budget: capacity >= 1, refill in (0, 1].
        let mut c = base.clone();
        c.faults.budget.capacity = Some(0);
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroBudgetCapacity);
        c.faults.budget = RetryBudgetConfig {
            capacity: Some(8),
            refill: 0.0,
        };
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::InvalidBudgetRefill(_)
        ));
        c.faults.budget.refill = 0.25;
        c.validate().unwrap();

        // Breaker: alpha and threshold in (0, 1], positive windows.
        let mut c = base;
        c.faults.breaker = BreakerConfig {
            enabled: true,
            alpha: 0.0,
            ..BreakerConfig::default()
        };
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::InvalidBreakerAlpha(_)
        ));
        c.faults.breaker.alpha = 0.3;
        c.faults.breaker.error_threshold = 1.5;
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::InvalidBreakerThreshold(_)
        ));
        c.faults.breaker.error_threshold = 0.6;
        c.faults.breaker.hold = SimDuration::ZERO;
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroBreakerWindow);
        c.faults.breaker.hold = SimDuration::from_millis(200);
        c.validate().unwrap();
    }

    #[test]
    fn label_mentions_prefetch() {
        let mut c =
            ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);
        assert!(!c.label().contains("/pf"));
        c.prefetch = PrefetchConfig::paper();
        assert!(c.label().contains("/pf"));
    }
}
