//! Property tests for the simulation engine substrate: event ordering,
//! server conservation laws, and PRNG sanity.

use proptest::prelude::*;

use rt_sim::{EventQueue, FifoServer, Rng, SimDuration, SimLock, SimTime};

proptest! {
    /// The event queue is a stable priority queue: popping returns events
    /// in time order, and schedule order within equal times.
    #[test]
    fn event_queue_is_stable_and_ordered(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort(); // stable by (time, insertion index)
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped, expected);
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                q.cancel(*id);
            } else {
                kept.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// FIFO server conservation: completions are ordered, no two service
    /// intervals overlap, and busy time equals the sum of service times.
    #[test]
    fn fifo_server_conserves_work(
        jobs in prop::collection::vec((0u64..10_000, 1u64..100), 1..100)
    ) {
        let mut server = FifoServer::new();
        let mut jobs = jobs;
        jobs.sort_by_key(|&(at, _)| at); // submissions arrive in time order
        let mut last_completion = SimTime::ZERO;
        let mut total_service = SimDuration::ZERO;
        for &(at, service) in &jobs {
            let adm = server.submit(SimTime::from_nanos(at), SimDuration::from_nanos(service));
            prop_assert!(adm.start >= SimTime::from_nanos(at));
            prop_assert!(adm.start >= last_completion);
            prop_assert_eq!(adm.completion, adm.start + SimDuration::from_nanos(service));
            last_completion = adm.completion;
            total_service += SimDuration::from_nanos(service);
        }
        prop_assert_eq!(server.busy_time(), total_service);
        prop_assert_eq!(server.ops(), jobs.len() as u64);
        prop_assert_eq!(server.free_at(), last_completion);
    }

    /// Lock grants never overlap and respect FIFO order.
    #[test]
    fn lock_grants_are_disjoint_and_fifo(
        reqs in prop::collection::vec((0u64..10_000, 1u64..50), 1..100)
    ) {
        let mut lock = SimLock::new();
        let mut reqs = reqs;
        reqs.sort_by_key(|&(at, _)| at);
        let mut prev_end = SimTime::ZERO;
        for &(at, hold) in &reqs {
            let grant = lock.acquire(SimTime::from_nanos(at), SimDuration::from_nanos(hold));
            prop_assert!(grant >= SimTime::from_nanos(at));
            prop_assert!(grant >= prev_end, "critical sections must not overlap");
            prev_end = grant + SimDuration::from_nanos(hold);
        }
        prop_assert_eq!(lock.acquisitions(), reqs.len() as u64);
    }

    /// Rng::below stays in range for arbitrary bounds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Rng::seeded(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Splitting the same parent with the same key is reproducible, and
    /// different keys diverge.
    #[test]
    fn rng_split_reproducible(seed in any::<u64>(), key in any::<u64>()) {
        let parent = Rng::seeded(seed);
        let mut a = parent.split(key);
        let mut b = parent.split(key);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = parent.split(key.wrapping_add(1));
        let divergent = (0..8).any(|_| a.next_u64() != c.next_u64());
        prop_assert!(divergent);
    }

    /// Exponential sampling is non-negative and zero-mean gives zero.
    #[test]
    fn rng_exponential_bounds(seed in any::<u64>(), mean_ms in 0u64..100) {
        let mut rng = Rng::seeded(seed);
        let mean = SimDuration::from_millis(mean_ms);
        let x = rng.exponential(mean);
        if mean_ms == 0 {
            prop_assert_eq!(x, SimDuration::ZERO);
        }
        // An exponential draw beyond 50x the mean has probability e^-50.
        prop_assert!(x <= mean * 50 + SimDuration::from_millis(1));
    }
}
