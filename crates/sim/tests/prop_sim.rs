//! Property tests for the simulation engine substrate: event ordering,
//! server conservation laws, and PRNG sanity.

use proptest::prelude::*;

use rt_sim::{EventQueue, FifoServer, Rng, SimDuration, SimLock, SimTime};

/// One step of the event-queue model comparison.
#[derive(Clone, Debug)]
enum QueueOp {
    /// Schedule an event at this time; the payload is its issue index.
    Schedule(u64),
    /// Cancel the id issued at (this value modulo the issued count) —
    /// which may be live, already cancelled, or long since popped.
    Cancel(usize),
    /// Pop the earliest live event, if any.
    Pop,
}

/// The seed queue, restated: every scheduled event is kept in issue order
/// and flagged rather than removed, and pop scans for the earliest
/// still-live entry. Quadratic, but an unambiguous specification.
#[derive(Default)]
struct TombstoneModel {
    /// (time, payload, dead) per issued event; issue order is tie order.
    events: Vec<(u64, usize, bool)>,
    live: usize,
}

impl TombstoneModel {
    fn schedule(&mut self, time: u64, payload: usize) {
        self.events.push((time, payload, false));
        self.live += 1;
    }

    fn cancel(&mut self, k: usize) -> bool {
        if self.events[k].2 {
            return false;
        }
        self.events[k].2 = true;
        self.live -= 1;
        true
    }

    fn earliest(&self) -> Option<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, dead))| !dead)
            .min_by_key(|&(i, &(t, _, _))| (t, i))
            .map(|(i, _)| i)
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        let i = self.earliest()?;
        self.events[i].2 = true;
        self.live -= 1;
        Some((self.events[i].0, self.events[i].1))
    }

    fn peek_time(&self) -> Option<u64> {
        self.earliest().map(|i| self.events[i].0)
    }

    fn len(&self) -> usize {
        self.live
    }
}

proptest! {
    /// The event queue is a stable priority queue: popping returns events
    /// in time order, and schedule order within equal times.
    #[test]
    fn event_queue_is_stable_and_ordered(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort(); // stable by (time, insertion index)
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped, expected);
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                q.cancel(*id);
            } else {
                kept.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// FIFO server conservation: completions are ordered, no two service
    /// intervals overlap, and busy time equals the sum of service times.
    #[test]
    fn fifo_server_conserves_work(
        jobs in prop::collection::vec((0u64..10_000, 1u64..100), 1..100)
    ) {
        let mut server = FifoServer::new();
        let mut jobs = jobs;
        jobs.sort_by_key(|&(at, _)| at); // submissions arrive in time order
        let mut last_completion = SimTime::ZERO;
        let mut total_service = SimDuration::ZERO;
        for &(at, service) in &jobs {
            let adm = server.submit(SimTime::from_nanos(at), SimDuration::from_nanos(service));
            prop_assert!(adm.start >= SimTime::from_nanos(at));
            prop_assert!(adm.start >= last_completion);
            prop_assert_eq!(adm.completion, adm.start + SimDuration::from_nanos(service));
            last_completion = adm.completion;
            total_service += SimDuration::from_nanos(service);
        }
        prop_assert_eq!(server.busy_time(), total_service);
        prop_assert_eq!(server.ops(), jobs.len() as u64);
        prop_assert_eq!(server.free_at(), last_completion);
    }

    /// Lock grants never overlap and respect FIFO order.
    #[test]
    fn lock_grants_are_disjoint_and_fifo(
        reqs in prop::collection::vec((0u64..10_000, 1u64..50), 1..100)
    ) {
        let mut lock = SimLock::new();
        let mut reqs = reqs;
        reqs.sort_by_key(|&(at, _)| at);
        let mut prev_end = SimTime::ZERO;
        for &(at, hold) in &reqs {
            let grant = lock.acquire(SimTime::from_nanos(at), SimDuration::from_nanos(hold));
            prop_assert!(grant >= SimTime::from_nanos(at));
            prop_assert!(grant >= prev_end, "critical sections must not overlap");
            prev_end = grant + SimDuration::from_nanos(hold);
        }
        prop_assert_eq!(lock.acquisitions(), reqs.len() as u64);
    }

    /// Rng::below stays in range for arbitrary bounds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Rng::seeded(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Splitting the same parent with the same key is reproducible, and
    /// different keys diverge.
    #[test]
    fn rng_split_reproducible(seed in any::<u64>(), key in any::<u64>()) {
        let parent = Rng::seeded(seed);
        let mut a = parent.split(key);
        let mut b = parent.split(key);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = parent.split(key.wrapping_add(1));
        let divergent = (0..8).any(|_| a.next_u64() != c.next_u64());
        prop_assert!(divergent);
    }

    /// The slab-and-generation queue is observably identical to the seed
    /// implementation (a sorted list with tombstones scanned on pop) under
    /// arbitrary interleavings of schedule, cancel, and pop — including
    /// cancelling ids that already popped (must report `false` and leave
    /// the queue untouched) and cancelling stale ids whose slot has since
    /// been recycled for a newer event.
    #[test]
    fn event_queue_matches_tombstone_model(
        ops in prop::collection::vec(
            prop_oneof![
                (0u64..50).prop_map(QueueOp::Schedule),
                (0usize..256).prop_map(QueueOp::Cancel),
                Just(QueueOp::Pop),
            ],
            1..300,
        )
    ) {
        let mut q = EventQueue::new();
        let mut model = TombstoneModel::default();
        let mut ids = Vec::new();
        for op in &ops {
            match *op {
                QueueOp::Schedule(t) => {
                    let payload = ids.len();
                    ids.push(q.schedule(SimTime::from_nanos(t), payload));
                    model.schedule(t, payload);
                }
                QueueOp::Cancel(pick) => {
                    if ids.is_empty() {
                        continue;
                    }
                    let k = pick % ids.len();
                    prop_assert_eq!(
                        q.cancel(ids[k]),
                        model.cancel(k),
                        "cancel of event {} disagreed", k
                    );
                }
                QueueOp::Pop => {
                    let got = q.pop().map(|(t, p)| (t.as_nanos(), p));
                    prop_assert_eq!(got, model.pop());
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.len() == 0);
            prop_assert_eq!(q.peek_time().map(SimTime::as_nanos), model.peek_time());
        }
        // Drain both to the end: the full pop orders must agree.
        loop {
            let got = q.pop().map(|(t, p)| (t.as_nanos(), p));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// Exponential sampling is non-negative and zero-mean gives zero.
    #[test]
    fn rng_exponential_bounds(seed in any::<u64>(), mean_ms in 0u64..100) {
        let mut rng = Rng::seeded(seed);
        let mean = SimDuration::from_millis(mean_ms);
        let x = rng.exponential(mean);
        if mean_ms == 0 {
            prop_assert_eq!(x, SimDuration::ZERO);
        }
        // An exponential draw beyond 50x the mean has probability e^-50.
        prop_assert!(x <= mean * 50 + SimDuration::from_millis(1));
    }
}
