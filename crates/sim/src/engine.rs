//! The event loop.
//!
//! A model implements [`Model`], pumping all domain logic from its
//! [`Model::handle`] method; the engine owns the clock and the pending-event
//! set and guarantees (a) the clock never runs backwards and (b) events at
//! the same instant fire in schedule order.

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// The clock plus the pending-event set, handed to the model on every event.
///
/// Cloning (with `E: Clone`) snapshots the clock, the fired count, and the
/// whole pending set; resuming the clone replays exactly the events the
/// original would have seen. Pair it with a cloned model to fork a
/// warmed-up run.
#[derive(Clone)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    fired: u64,
}

impl<E> Scheduler<E> {
    /// A scheduler at time zero with no pending events.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            fired: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at an absolute time, which must not be in the past.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: {time:?} < now {:?}",
            self.now
        );
        self.queue.schedule(time.max(self.now), event)
    }

    /// Schedule an event `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Cancel a pending event. No-op if it already fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Number of events processed so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A simulation model driven by the engine.
pub trait Model {
    /// The event payload type.
    type Event;

    /// Handle one event at `sched.now()`. The model may schedule further
    /// events; it must not assume anything fires between consecutive calls.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Outcome of [`run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Simulated time when the loop stopped.
    pub end_time: SimTime,
    /// Total events dispatched.
    pub events: u64,
    /// True if the loop stopped because the event budget was exhausted
    /// rather than because the queue drained.
    pub budget_exhausted: bool,
}

/// Host-side statistics from [`run_with_stats`]: the outcome plus the
/// wall-clock cost of producing it.
#[derive(Clone, Copy, Debug)]
pub struct EngineStats {
    /// The simulation outcome, identical to what [`run`] would return.
    pub outcome: RunOutcome,
    /// Host wall-clock time spent inside the event loop.
    pub wall: std::time::Duration,
    /// Largest number of simultaneously pending events observed.
    pub peak_pending: usize,
}

impl EngineStats {
    /// Events dispatched per host-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.outcome.events as f64 / secs
        }
    }
}

/// Like [`run`], but measures host wall-clock time and tracks the peak
/// pending-event count. The dispatch order — and therefore every simulated
/// number — is identical to [`run`]; the instrumentation only reads the
/// host clock and the queue length.
pub fn run_with_stats<M: Model>(
    model: &mut M,
    sched: &mut Scheduler<M::Event>,
    max_events: u64,
) -> EngineStats {
    let start = std::time::Instant::now();
    let mut peak_pending = sched.pending();
    let outcome = loop {
        let Some((time, event)) = sched.queue.pop() else {
            break RunOutcome {
                end_time: sched.now,
                events: sched.fired,
                budget_exhausted: false,
            };
        };
        assert!(
            time >= sched.now,
            "event queue returned an event from the past"
        );
        sched.now = time;
        sched.fired += 1;
        model.handle(event, sched);
        peak_pending = peak_pending.max(sched.pending());
        if sched.fired >= max_events {
            break RunOutcome {
                end_time: sched.now,
                events: sched.fired,
                budget_exhausted: true,
            };
        }
    };
    EngineStats {
        outcome,
        wall: start.elapsed(),
        peak_pending,
    }
}

/// Why [`run_observed`] stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObservedEnd {
    /// The queue drained or the event budget ran out; carries the same
    /// outcome [`run`] would report.
    Finished(RunOutcome),
    /// The observer rejected the model's state after an event, halting the
    /// run. Carries the observer's message and the halt time.
    Violation {
        /// The observer's description of the violated invariant.
        message: String,
        /// Simulated time at the halt.
        at: SimTime,
        /// Events dispatched up to and including the offending one.
        events: u64,
    },
}

/// Like [`run`], but calls `observe(model, events_fired)` after every
/// dispatched event; the run halts at the first `Err`. The dispatch order
/// — and every simulated number — is identical to [`run`]; the observer
/// only reads state. Built for invariant-checked soak runs.
pub fn run_observed<M: Model>(
    model: &mut M,
    sched: &mut Scheduler<M::Event>,
    max_events: u64,
    mut observe: impl FnMut(&M, u64) -> Result<(), String>,
) -> ObservedEnd {
    while let Some((time, event)) = sched.queue.pop() {
        assert!(
            time >= sched.now,
            "event queue returned an event from the past"
        );
        sched.now = time;
        sched.fired += 1;
        model.handle(event, sched);
        if let Err(message) = observe(model, sched.fired) {
            return ObservedEnd::Violation {
                message,
                at: sched.now,
                events: sched.fired,
            };
        }
        if sched.fired >= max_events {
            return ObservedEnd::Finished(RunOutcome {
                end_time: sched.now,
                events: sched.fired,
                budget_exhausted: true,
            });
        }
    }
    ObservedEnd::Finished(RunOutcome {
        end_time: sched.now,
        events: sched.fired,
        budget_exhausted: false,
    })
}

/// Like [`run`], but also stops — *after* dispatching the offending event —
/// as soon as `stop(model)` returns true. The dispatch order up to the stop
/// point is identical to [`run`]'s, so a run paused here and resumed with
/// [`run`] on the same model and scheduler replays exactly the tail the
/// uninterrupted run would have seen. Built for fork points: warm a model
/// to a condition, clone it together with the scheduler, and continue each
/// copy independently.
pub fn run_until<M: Model>(
    model: &mut M,
    sched: &mut Scheduler<M::Event>,
    max_events: u64,
    mut stop: impl FnMut(&M) -> bool,
) -> RunOutcome {
    while let Some((time, event)) = sched.queue.pop() {
        assert!(
            time >= sched.now,
            "event queue returned an event from the past"
        );
        sched.now = time;
        sched.fired += 1;
        model.handle(event, sched);
        if sched.fired >= max_events {
            return RunOutcome {
                end_time: sched.now,
                events: sched.fired,
                budget_exhausted: true,
            };
        }
        if stop(model) {
            break;
        }
    }
    RunOutcome {
        end_time: sched.now,
        events: sched.fired,
        budget_exhausted: false,
    }
}

/// Drive `model` until no events remain, or until `max_events` have fired
/// (a runaway-model backstop; pass `u64::MAX` for "no limit").
pub fn run<M: Model>(
    model: &mut M,
    sched: &mut Scheduler<M::Event>,
    max_events: u64,
) -> RunOutcome {
    while let Some((time, event)) = sched.queue.pop() {
        assert!(
            time >= sched.now,
            "event queue returned an event from the past"
        );
        sched.now = time;
        sched.fired += 1;
        model.handle(event, sched);
        if sched.fired >= max_events {
            return RunOutcome {
                end_time: sched.now,
                events: sched.fired,
                budget_exhausted: true,
            };
        }
    }
    RunOutcome {
        end_time: sched.now,
        events: sched.fired,
        budget_exhausted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that rings a countdown: each event re-schedules itself with
    /// a smaller counter until it reaches zero.
    struct Countdown {
        log: Vec<(SimTime, u32)>,
    }

    impl Model for Countdown {
        type Event = u32;
        fn handle(&mut self, event: u32, sched: &mut Scheduler<u32>) {
            self.log.push((sched.now(), event));
            if event > 0 {
                sched.schedule_in(SimDuration::from_millis(10), event - 1);
            }
        }
    }

    #[test]
    fn runs_to_completion() {
        let mut model = Countdown { log: Vec::new() };
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::ZERO, 3u32);
        let out = run(&mut model, &mut sched, u64::MAX);
        assert_eq!(out.events, 4);
        assert!(!out.budget_exhausted);
        assert_eq!(out.end_time, SimTime::ZERO + SimDuration::from_millis(30));
        assert_eq!(
            model.log.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            vec![3, 2, 1, 0]
        );
    }

    #[test]
    fn budget_stops_runaway() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_in(SimDuration::from_nanos(1), ());
            }
        }
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::ZERO, ());
        let out = run(&mut Forever, &mut sched, 1000);
        assert!(out.budget_exhausted);
        assert_eq!(out.events, 1000);
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        struct Collect {
            seen: Vec<u32>,
        }
        impl Model for Collect {
            type Event = u32;
            fn handle(&mut self, e: u32, _: &mut Scheduler<u32>) {
                self.seen.push(e);
            }
        }
        let mut model = Collect { seen: Vec::new() };
        let mut sched = Scheduler::new();
        for i in 0..20 {
            sched.schedule_at(SimTime::from_nanos(500), i);
        }
        run(&mut model, &mut sched, u64::MAX);
        assert_eq!(model.seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        struct Collect {
            seen: Vec<u32>,
        }
        impl Model for Collect {
            type Event = u32;
            fn handle(&mut self, e: u32, _: &mut Scheduler<u32>) {
                self.seen.push(e);
            }
        }
        let mut model = Collect { seen: Vec::new() };
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::from_nanos(1), 1);
        let id = sched.schedule_at(SimTime::from_nanos(2), 2);
        sched.schedule_at(SimTime::from_nanos(3), 3);
        sched.cancel(id);
        run(&mut model, &mut sched, u64::MAX);
        assert_eq!(model.seen, vec![1, 3]);
    }

    #[test]
    fn run_with_stats_matches_run() {
        let mut a = Countdown { log: Vec::new() };
        let mut sa = Scheduler::new();
        sa.schedule_at(SimTime::ZERO, 5u32);
        let plain = run(&mut a, &mut sa, u64::MAX);

        let mut b = Countdown { log: Vec::new() };
        let mut sb = Scheduler::new();
        sb.schedule_at(SimTime::ZERO, 5u32);
        let stats = run_with_stats(&mut b, &mut sb, u64::MAX);

        assert_eq!(stats.outcome, plain);
        assert_eq!(a.log, b.log);
        assert!(stats.peak_pending >= 1);
        assert!(stats.events_per_sec() >= 0.0);
    }

    #[test]
    fn run_with_stats_respects_budget() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_in(SimDuration::from_nanos(1), ());
            }
        }
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::ZERO, ());
        let stats = run_with_stats(&mut Forever, &mut sched, 100);
        assert!(stats.outcome.budget_exhausted);
        assert_eq!(stats.outcome.events, 100);
    }

    #[test]
    fn run_observed_matches_run_and_halts_on_violation() {
        // Clean pass: identical trajectory to `run`.
        let mut a = Countdown { log: Vec::new() };
        let mut sa = Scheduler::new();
        sa.schedule_at(SimTime::ZERO, 5u32);
        let plain = run(&mut a, &mut sa, u64::MAX);

        let mut b = Countdown { log: Vec::new() };
        let mut sb = Scheduler::new();
        sb.schedule_at(SimTime::ZERO, 5u32);
        let end = run_observed(&mut b, &mut sb, u64::MAX, |_, _| Ok(()));
        assert_eq!(end, ObservedEnd::Finished(plain));
        assert_eq!(a.log, b.log);

        // Violation: halts at the first failing observation.
        let mut c = Countdown { log: Vec::new() };
        let mut sc = Scheduler::new();
        sc.schedule_at(SimTime::ZERO, 5u32);
        let end = run_observed(&mut c, &mut sc, u64::MAX, |m, _| {
            if m.log.len() >= 3 {
                Err("three events is plenty".into())
            } else {
                Ok(())
            }
        });
        match end {
            ObservedEnd::Violation {
                message, events, ..
            } => {
                assert_eq!(message, "three events is plenty");
                assert_eq!(events, 3);
            }
            other => panic!("expected a violation, got {other:?}"),
        }
        assert_eq!(c.log.len(), 3);
    }

    #[test]
    fn clock_is_monotone() {
        // Two interleaved self-rescheduling chains with co-prime periods:
        // events arrive out of schedule order, the clock must not regress.
        struct Recorder {
            last: SimTime,
        }
        impl Model for Recorder {
            type Event = u8;
            fn handle(&mut self, chain: u8, sched: &mut Scheduler<u8>) {
                assert!(sched.now() >= self.last);
                self.last = sched.now();
                if sched.now() < SimTime::from_nanos(1_000) {
                    let step = if chain == 0 { 7 } else { 3 };
                    sched.schedule_in(SimDuration::from_nanos(step), chain);
                }
            }
        }
        let mut model = Recorder {
            last: SimTime::ZERO,
        };
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::ZERO, 0);
        sched.schedule_at(SimTime::from_nanos(1), 1);
        run(&mut model, &mut sched, u64::MAX);
        // Chains of period 7 and 3 over 1000 ns: ~143 + ~333 events.
        assert!(sched.events_fired() > 400);
    }
}
