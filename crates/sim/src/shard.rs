//! Conservative parallel discrete-event simulation.
//!
//! The sequential engine ([`crate::run`]) drives one model from one queue.
//! This module runs **many shards** — independent sub-models that interact
//! only through timestamped messages — and advances them concurrently
//! without ever violating causality, using the classic synchronous
//! conservative window algorithm (Chandy–Misra in its barrier form, à la
//! YAWNS): every cross-shard message must be sent at least `lookahead`
//! into the future, so between two barriers each shard can safely process
//! every event earlier than the global bound
//!
//! ```text
//!   G = min over shards i of (head_i + lookahead_i)
//! ```
//!
//! because no message created this round (or any later round) can arrive
//! before `G`. The reproduction's fixed 30 ms disk service time is exactly
//! such a bound: a disk farm shard never affects a peer sooner than one
//! service time from now, so windows span ~30 ms of simulated time and
//! barriers stay rare.
//!
//! # Bit-exact determinism
//!
//! Parallel simulators usually surrender reproducibility at equal
//! timestamps: whichever worker delivers first wins. Here every event
//! carries an **intrinsic key** `(time, origin shard, origin counter)`
//! assigned at *creation*, not at queue insertion. Each shard pops its
//! pending set in key order, so the per-shard event sequence is a pure
//! function of the model — identical for the serial reference executor
//! ([`run_shards_reference`]), the windowed single-thread path, and any
//! worker count. Tests in this module assert that equivalence event for
//! event.
//!
//! The event budget is enforced at window boundaries (the only points
//! where a deterministic global cut exists), so a budget-limited run also
//! stops at the same event count regardless of thread count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Barrier, Mutex};

use crate::time::{SimDuration, SimTime};

/// Globally unique, creation-assigned ordering key for a shard event.
///
/// Events are processed in ascending `(time, src, counter)` order within a
/// shard. `src` is the shard that created the event and `counter` that
/// shard's creation sequence number — both fixed at creation, so the order
/// never depends on when a message happens to be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardKey {
    /// Absolute simulated firing time.
    pub time: SimTime,
    /// Shard that created the event.
    pub src: u32,
    /// Creation sequence number within `src`.
    pub counter: u64,
}

/// A pending event: its key plus the payload.
struct Pending<E> {
    key: ShardKey,
    payload: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Pending<E> {}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the smallest key.
        other.key.cmp(&self.key)
    }
}

/// Per-shard runtime state: the pending set, the local clock, the
/// creation counter behind [`ShardKey`], and the fired-event count.
struct ShardState<E> {
    queue: BinaryHeap<Pending<E>>,
    clock: SimTime,
    counter: u64,
    fired: u64,
}

impl<E> ShardState<E> {
    fn new() -> Self {
        ShardState {
            queue: BinaryHeap::new(),
            clock: SimTime::ZERO,
            counter: 0,
            fired: 0,
        }
    }

    /// Earliest pending time, or `None` when the shard is idle.
    fn head(&self) -> Option<SimTime> {
        self.queue.peek().map(|p| p.key.time)
    }
}

/// A cross-shard message in flight: destination shard, intrinsic key,
/// payload. The key — assigned at send time — is what keeps pop order
/// independent of which thread routed the message.
type Routed<E> = (u32, ShardKey, E);

/// A sub-model advanced by [`run_shards`]. Shards own disjoint state and
/// interact only through [`ShardCtx::send`] messages delayed by at least
/// [`ShardModel::lookahead`].
pub trait ShardModel: Send {
    /// The event payload type.
    type Event: Send;

    /// Minimum delay of any cross-shard message this shard sends. Must be
    /// positive: zero lookahead would forbid any safe window. Called once
    /// at startup; the bound is fixed for the whole run.
    fn lookahead(&self) -> SimDuration;

    /// Handle one event at `ctx.now()`. The model may schedule local
    /// events freely and send cross-shard messages at `>= lookahead`.
    fn handle(&mut self, event: Self::Event, ctx: &mut ShardCtx<'_, Self::Event>);
}

/// Scheduling context handed to [`ShardModel::handle`]: the local clock,
/// the shard's own pending set, and the cross-shard outbox.
pub struct ShardCtx<'a, E> {
    now: SimTime,
    shard: u32,
    shards: u32,
    lookahead: SimDuration,
    queue: &'a mut BinaryHeap<Pending<E>>,
    counter: &'a mut u64,
    outbox: &'a mut Vec<Routed<E>>,
}

impl<E> ShardCtx<'_, E> {
    /// Current simulated time in this shard.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This shard's index.
    #[inline]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Total number of shards in the run.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    fn next_key(&mut self, time: SimTime) -> ShardKey {
        let counter = *self.counter;
        *self.counter = counter.checked_add(1).expect("shard counter exhausted");
        ShardKey {
            time,
            src: self.shard,
            counter,
        }
    }

    /// Schedule a local event at an absolute time (not in the past).
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: {time:?} < now {:?}",
            self.now
        );
        let key = self.next_key(time.max(self.now));
        self.queue.push(Pending {
            key,
            payload: event,
        });
    }

    /// Schedule a local event `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Send `event` to shard `dst`, arriving `delay` from now. `delay`
    /// must respect this shard's lookahead bound — that promise is what
    /// makes the conservative window safe, so violating it panics.
    pub fn send(&mut self, dst: u32, delay: SimDuration, event: E) {
        assert!(
            delay >= self.lookahead,
            "cross-shard send below the lookahead bound: {delay:?} < {:?}",
            self.lookahead
        );
        assert!(dst < self.shards, "send to unknown shard {dst}");
        let key = self.next_key(self.now + delay);
        if dst == self.shard {
            // A self-send is just a local event with a long fuse.
            self.queue.push(Pending {
                key,
                payload: event,
            });
        } else {
            self.outbox.push((dst, key, event));
        }
    }
}

/// Outcome of [`run_shards`] / [`run_shards_reference`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRun {
    /// Total events dispatched across all shards.
    pub events: u64,
    /// Events dispatched per shard (index-aligned with the input models).
    pub per_shard_events: Vec<u64>,
    /// Latest local clock over all shards when the run stopped.
    pub end_time: SimTime,
    /// Synchronization windows executed.
    pub rounds: u64,
    /// True when the run stopped at the event budget rather than by
    /// draining every queue. The budget is checked at window boundaries,
    /// so the final count may overshoot `max_events` — by the same amount
    /// at every thread count.
    pub budget_exhausted: bool,
}

/// Deliver one routed message into its destination shard's pending set.
/// Delivery is separate from processing: mail lands before a window's
/// bound is applied, never during it.
fn deliver<E>(state: &mut ShardState<E>, key: ShardKey, payload: E) {
    debug_assert!(
        key.time >= state.clock,
        "conservative window violated: arrival {:?} behind clock {:?}",
        key.time,
        state.clock
    );
    state.queue.push(Pending { key, payload });
}

/// One shard's window work: process every pending event strictly earlier
/// than `bound`. Returns events fired this window.
fn process_window<M: ShardModel>(
    shard: u32,
    shards: u32,
    lookahead: SimDuration,
    model: &mut M,
    state: &mut ShardState<M::Event>,
    bound: SimTime,
    outbox: &mut Vec<Routed<M::Event>>,
) -> u64 {
    let mut fired = 0;
    while state.queue.peek().is_some_and(|p| p.key.time < bound) {
        let Pending { key, payload } = state.queue.pop().expect("peeked event vanished");
        debug_assert!(key.time >= state.clock, "shard clock ran backwards");
        state.clock = key.time;
        fired += 1;
        let mut ctx = ShardCtx {
            now: key.time,
            shard,
            shards,
            lookahead,
            queue: &mut state.queue,
            counter: &mut state.counter,
            outbox,
        };
        model.handle(payload, &mut ctx);
    }
    state.fired += fired;
    fired
}

/// The global window bound `min_i(head_i + lookahead_i)` in raw
/// nanoseconds; `u64::MAX` when every queue is empty.
fn window_bound(heads: impl Iterator<Item = (Option<SimTime>, SimDuration)>) -> u64 {
    heads
        .filter_map(|(head, la)| head.map(|h| h.as_nanos().saturating_add(la.as_nanos())))
        .min()
        .unwrap_or(u64::MAX)
}

/// Seed initial events, shard by shard, at time zero.
fn seed_shards<M: ShardModel>(
    models: &mut [M],
    states: &mut [ShardState<M::Event>],
    lookaheads: &[SimDuration],
    mut seed: impl FnMut(u32, &mut ShardCtx<'_, M::Event>),
) {
    let shards = models.len() as u32;
    let mut outbox = Vec::new();
    for s in 0..models.len() {
        let mut ctx = ShardCtx {
            now: SimTime::ZERO,
            shard: s as u32,
            shards,
            lookahead: lookaheads[s],
            queue: &mut states[s].queue,
            counter: &mut states[s].counter,
            outbox: &mut outbox,
        };
        seed(s as u32, &mut ctx);
        for (dst, key, payload) in outbox.drain(..) {
            states[dst as usize].queue.push(Pending { key, payload });
        }
    }
}

fn finish(states: &[ShardState<impl Sized>], rounds: u64, budget_exhausted: bool) -> ShardRun {
    ShardRun {
        events: states.iter().map(|s| s.fired).sum(),
        per_shard_events: states.iter().map(|s| s.fired).collect(),
        end_time: states
            .iter()
            .map(|s| s.clock)
            .max()
            .unwrap_or(SimTime::ZERO),
        rounds,
        budget_exhausted,
    }
}

/// Run `models` to completion (or the event budget) with conservative
/// window synchronization, on `threads` worker threads. `seed` is called
/// once per shard at time zero to plant initial events.
///
/// The result — every shard's event sequence, clock, and count — is
/// **bit-identical for every `threads` value**, including the serial
/// reference order of [`run_shards_reference`].
pub fn run_shards<M: ShardModel>(
    models: &mut [M],
    threads: usize,
    max_events: u64,
    seed: impl FnMut(u32, &mut ShardCtx<'_, M::Event>),
) -> ShardRun {
    let n = models.len();
    if n == 0 {
        return ShardRun {
            events: 0,
            per_shard_events: Vec::new(),
            end_time: SimTime::ZERO,
            rounds: 0,
            budget_exhausted: false,
        };
    }
    let lookaheads: Vec<SimDuration> = models.iter().map(|m| m.lookahead()).collect();
    for (i, la) in lookaheads.iter().enumerate() {
        assert!(
            *la > SimDuration::ZERO,
            "shard {i} has zero lookahead; conservative windows need a positive bound"
        );
    }
    let mut states: Vec<ShardState<M::Event>> = (0..n).map(|_| ShardState::new()).collect();
    seed_shards(models, &mut states, &lookaheads, seed);

    let workers = threads.clamp(1, n);
    if workers == 1 {
        run_windows_serial(models, &mut states, &lookaheads, max_events)
    } else {
        run_windows_parallel(models, &mut states, &lookaheads, max_events, workers)
    }
}

/// Single-thread windowed executor: identical window structure (and
/// therefore identical budget cuts) to the parallel path.
fn run_windows_serial<M: ShardModel>(
    models: &mut [M],
    states: &mut [ShardState<M::Event>],
    lookaheads: &[SimDuration],
    max_events: u64,
) -> ShardRun {
    let shards = models.len() as u32;
    let mut rounds = 0u64;
    let mut total = 0u64;
    let mut outbox: Vec<Routed<M::Event>> = Vec::new();
    let mut pending_mail: Vec<Vec<Routed<M::Event>>> =
        (0..models.len()).map(|_| Vec::new()).collect();
    loop {
        // Phase A, exactly like the parallel path: deliver this round's
        // mail first, then derive the bound from the post-delivery heads.
        // Computing the bound before delivery would let a shard run past
        // a message already in flight (a causality violation), and an
        // all-empty-queues check would drop mail still in transit.
        for s in 0..models.len() {
            for (dst, key, payload) in pending_mail[s].drain(..) {
                debug_assert_eq!(dst as usize, s, "message routed to the wrong shard");
                deliver(&mut states[s], key, payload);
            }
        }
        let bound = window_bound(states.iter().zip(lookaheads).map(|(s, la)| (s.head(), *la)));
        if bound == u64::MAX {
            return finish(states, rounds, false);
        }
        if total >= max_events {
            return finish(states, rounds, true);
        }
        rounds += 1;
        let bound = SimTime::from_nanos(bound);
        for s in 0..models.len() {
            total += process_window(
                s as u32,
                shards,
                lookaheads[s],
                &mut models[s],
                &mut states[s],
                bound,
                &mut outbox,
            );
        }
        for (dst, key, payload) in outbox.drain(..) {
            pending_mail[dst as usize].push((dst, key, payload));
        }
    }
}

/// Multi-worker windowed executor. Shards are split into contiguous
/// chunks, one per persistent worker; two barriers per round separate
/// (a) mailbox delivery + head publication from (b) window processing.
/// All cross-worker data is exchanged only at barriers, and every worker
/// derives the same bound and the same budget decision from the same
/// published values — no racy cuts.
fn run_windows_parallel<M: ShardModel>(
    models: &mut [M],
    states: &mut [ShardState<M::Event>],
    lookaheads: &[SimDuration],
    max_events: u64,
    workers: usize,
) -> ShardRun {
    let n = models.len();
    let shards = n as u32;
    let chunk = n.div_ceil(workers);
    let workers = n.div_ceil(chunk); // drop workers left without a chunk
    let owner = |shard: usize| shard / chunk;

    // Published-at-barrier state: per-worker window contribution
    // (min head+lookahead over its shards), fired-event counts, and
    // per-worker mailboxes of messages addressed to that worker's shards.
    let mins: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect();
    let fired: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let rounds = AtomicU64::new(0);
    let mailboxes: Vec<Mutex<Vec<Routed<M::Event>>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(workers);

    let budget_hit = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut model_chunks = models.chunks_mut(chunk);
        let mut state_chunks = states.chunks_mut(chunk);
        for w in 0..workers {
            let my_models = model_chunks.next().expect("worker without models");
            let my_states = state_chunks.next().expect("worker without states");
            let base = w * chunk;
            let my_lookaheads = &lookaheads[base..base + my_models.len()];
            let mins = &mins;
            let fired = &fired;
            let rounds = &rounds;
            let mailboxes = &mailboxes;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let mut outbox: Vec<Routed<M::Event>> = Vec::new();
                let mut mail: Vec<Routed<M::Event>> = Vec::new();
                let mut budget_hit = false;
                loop {
                    // Phase A: take this round's mail, deliver it, publish
                    // the chunk's window contribution.
                    mail.append(&mut mailboxes[w].lock().expect("mailbox poisoned"));
                    for (dst, key, payload) in mail.drain(..) {
                        // Delivery only; processing waits for the bound.
                        deliver(&mut my_states[dst as usize - base], key, payload);
                    }
                    let my_min = window_bound(
                        my_states
                            .iter()
                            .zip(my_lookaheads)
                            .map(|(s, la)| (s.head(), *la)),
                    );
                    mins[w].store(my_min, AtomicOrdering::Relaxed);
                    // Snapshot the budget *here*, between the barriers:
                    // fired counters only change during processing, which
                    // no worker can reach until everyone passes the next
                    // barrier — so every worker sums the same values. A
                    // sum taken after the barrier would race with faster
                    // workers' updates and split the break decision.
                    let total: u64 = fired.iter().map(|f| f.load(AtomicOrdering::Relaxed)).sum();
                    barrier.wait();

                    // Phase B: every worker sees the same published mins
                    // and fired totals, so every worker takes the same
                    // branch below — the cut is deterministic.
                    let bound = mins
                        .iter()
                        .map(|m| m.load(AtomicOrdering::Relaxed))
                        .min()
                        .expect("at least one worker");
                    if bound == u64::MAX {
                        break;
                    }
                    if total >= max_events {
                        budget_hit = true;
                        break;
                    }
                    if w == 0 {
                        rounds.fetch_add(1, AtomicOrdering::Relaxed);
                    }
                    let bound = SimTime::from_nanos(bound);
                    let mut window_fired = 0;
                    for (i, (model, state)) in
                        my_models.iter_mut().zip(my_states.iter_mut()).enumerate()
                    {
                        let shard = (base + i) as u32;
                        window_fired += process_window(
                            shard,
                            shards,
                            my_lookaheads[i],
                            model,
                            state,
                            bound,
                            &mut outbox,
                        );
                    }
                    fired[w].fetch_add(window_fired, AtomicOrdering::Relaxed);
                    // Route outbound messages to their owners' mailboxes.
                    outbox.sort_unstable_by_key(|(dst, ..)| *dst);
                    let mut rest = outbox.drain(..).peekable();
                    while let Some(&(dst, ..)) = rest.peek() {
                        let dest_worker = owner(dst as usize);
                        let mut slot = mailboxes[dest_worker].lock().expect("mailbox poisoned");
                        while let Some(&(d, ..)) = rest.peek() {
                            if owner(d as usize) != dest_worker {
                                break;
                            }
                            slot.push(rest.next().expect("peeked message vanished"));
                        }
                    }
                    // Wait for every mailbox write before the next
                    // delivery phase begins.
                    barrier.wait();
                }
                budget_hit
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .fold(false, |a, b| a | b)
    });
    finish(states, rounds.load(AtomicOrdering::Relaxed), budget_hit)
}

/// Serial reference executor: one global heap discipline, no windows.
/// Repeatedly processes the globally smallest pending key and delivers
/// messages immediately. This is the specification [`run_shards`] is
/// tested against; it is also the easiest mental model of what a shard
/// run computes.
pub fn run_shards_reference<M: ShardModel>(
    models: &mut [M],
    max_events: u64,
    seed: impl FnMut(u32, &mut ShardCtx<'_, M::Event>),
) -> ShardRun {
    let n = models.len();
    if n == 0 {
        return ShardRun {
            events: 0,
            per_shard_events: Vec::new(),
            end_time: SimTime::ZERO,
            rounds: 0,
            budget_exhausted: false,
        };
    }
    let lookaheads: Vec<SimDuration> = models.iter().map(|m| m.lookahead()).collect();
    let mut states: Vec<ShardState<M::Event>> = (0..n).map(|_| ShardState::new()).collect();
    seed_shards(models, &mut states, &lookaheads, seed);

    let shards = n as u32;
    let mut outbox = Vec::new();
    let mut total = 0u64;
    loop {
        let next = states
            .iter()
            .enumerate()
            .filter_map(|(s, st)| st.queue.peek().map(|p| (p.key, s)))
            .min();
        let Some((_, s)) = next else {
            return finish(&states, 0, false);
        };
        if total >= max_events {
            return finish(&states, 0, true);
        }
        let state = &mut states[s];
        let Pending { key, payload } = state.queue.pop().expect("peeked event vanished");
        state.clock = key.time;
        state.fired += 1;
        total += 1;
        let mut ctx = ShardCtx {
            now: key.time,
            shard: s as u32,
            shards,
            lookahead: lookaheads[s],
            queue: &mut state.queue,
            counter: &mut state.counter,
            outbox: &mut outbox,
        };
        models[s].handle(payload, &mut ctx);
        for (dst, key, payload) in outbox.drain(..) {
            states[dst as usize].queue.push(Pending { key, payload });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    const MS: u64 = 1_000_000;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * MS)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_nanos(ms * MS)
    }

    /// A deterministic chatterbox: every event does a bit of local work,
    /// sometimes re-schedules locally, sometimes gossips to a random peer
    /// at exactly-lookahead or more. Exercises ties (many equal times),
    /// cross-shard fan-out, and drain-out.
    struct Gossip {
        id: u32,
        rng: Rng,
        remaining: u32,
        log: Vec<(SimTime, u32)>,
    }

    impl Gossip {
        fn fleet(n: u32, budget: u32) -> Vec<Gossip> {
            (0..n)
                .map(|id| Gossip {
                    id,
                    rng: Rng::seeded(0xB0B + id as u64),
                    remaining: budget,
                    log: Vec::new(),
                })
                .collect()
        }
    }

    impl ShardModel for Gossip {
        type Event = u32;

        fn lookahead(&self) -> SimDuration {
            d(30)
        }

        fn handle(&mut self, tag: u32, ctx: &mut ShardCtx<'_, u32>) {
            self.log.push((ctx.now(), tag));
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            match self.rng.below(4) {
                // Local burst: several events at the *same* instant plus a
                // short hop — stresses intra-window ordering.
                0 => {
                    ctx.schedule_in(SimDuration::ZERO, tag.wrapping_mul(31) + 1);
                    ctx.schedule_in(SimDuration::ZERO, tag.wrapping_mul(31) + 2);
                    ctx.schedule_in(d(1), tag + 1);
                }
                1 => ctx.schedule_in(d(self.rng.below(10) + 1), tag + 7),
                // Gossip to a peer at the lookahead bound exactly.
                2 => {
                    let peer = self.rng.below(ctx.shards() as u64) as u32;
                    ctx.send(peer, d(30), self.id * 1000 + tag);
                }
                // Gossip further out, with jitter.
                _ => {
                    let peer = (self.id + 1) % ctx.shards();
                    ctx.send(peer, d(30 + self.rng.below(20)), tag + 13);
                }
            }
        }
    }

    fn seed_gossip(s: u32, ctx: &mut ShardCtx<'_, u32>) {
        ctx.schedule_at(t(0), s);
        ctx.schedule_at(t(5), 100 + s);
    }

    #[test]
    fn windowed_matches_reference_event_for_event() {
        let mut reference = Gossip::fleet(5, 200);
        let ref_run = run_shards_reference(&mut reference, u64::MAX, seed_gossip);
        assert!(ref_run.events > 1000, "model too quiet to prove anything");

        for threads in [1, 2, 3, 5, 8] {
            let mut fleet = Gossip::fleet(5, 200);
            let run = run_shards(&mut fleet, threads, u64::MAX, seed_gossip);
            for (s, (a, b)) in reference.iter().zip(&fleet).enumerate() {
                assert_eq!(a.log, b.log, "shard {s} diverged at {threads} threads");
            }
            assert_eq!(run.events, ref_run.events);
            assert_eq!(run.per_shard_events, ref_run.per_shard_events);
            assert_eq!(run.end_time, ref_run.end_time);
            assert!(!run.budget_exhausted);
        }
    }

    #[test]
    fn budget_cut_is_identical_across_thread_counts() {
        let mut base = Gossip::fleet(4, 500);
        let cut = run_shards(&mut base, 1, 2_000, seed_gossip);
        assert!(cut.budget_exhausted);
        assert!(cut.events >= 2_000);
        for threads in [2, 4] {
            let mut fleet = Gossip::fleet(4, 500);
            let run = run_shards(&mut fleet, threads, 2_000, seed_gossip);
            assert_eq!(run, cut, "budget cut moved at {threads} threads");
            for (a, b) in base.iter().zip(&fleet) {
                assert_eq!(a.log, b.log);
            }
        }
    }

    #[test]
    fn single_shard_degenerates_to_sequential() {
        let mut fleet = Gossip::fleet(1, 50);
        let run = run_shards(&mut fleet, 4, u64::MAX, seed_gossip);
        let mut reference = Gossip::fleet(1, 50);
        let ref_run = run_shards_reference(&mut reference, u64::MAX, seed_gossip);
        assert_eq!(fleet[0].log, reference[0].log);
        assert_eq!(run.events, ref_run.events);
    }

    #[test]
    fn empty_fleet_is_a_noop() {
        let mut fleet: Vec<Gossip> = Vec::new();
        let run = run_shards(&mut fleet, 4, u64::MAX, |_, _| {});
        assert_eq!(run.events, 0);
        assert_eq!(run.rounds, 0);
    }

    #[test]
    fn idle_shards_do_not_block_the_window() {
        // Only shard 0 is seeded; the rest stay idle. The run must drain
        // shard 0 without waiting on anyone.
        let mut fleet = Gossip::fleet(3, 40);
        let run = run_shards(&mut fleet, 3, u64::MAX, |s, ctx| {
            if s == 0 {
                ctx.schedule_at(t(0), 0);
            }
        });
        assert!(run.events > 0);
        assert!(!run.budget_exhausted);
    }

    /// Minimal ping-pong model for the serial-executor regressions below:
    /// tag 0 sends to shard 1, tag 1 replies to shard 0, anything else is
    /// inert filler that only advances the local clock.
    struct PingPong {
        log: Vec<(SimTime, u8)>,
    }

    impl ShardModel for PingPong {
        type Event = u8;

        fn lookahead(&self) -> SimDuration {
            d(30)
        }

        fn handle(&mut self, tag: u8, ctx: &mut ShardCtx<'_, u8>) {
            self.log.push((ctx.now(), tag));
            match tag {
                0 => ctx.send(1, d(30), 1),
                1 => ctx.send(0, d(30), 2),
                _ => {}
            }
        }
    }

    #[test]
    fn serial_delivers_mail_before_computing_the_bound() {
        // Regression: shard 0 opens at t=0 (message lands on shard 1 at
        // t=30 ms) while shard 1's own head sits at t=100 ms and shard 0
        // keeps a filler event at t=70 ms. A bound computed from the
        // pre-delivery heads is min(70, 100) + 30, letting shard 0 run to
        // t=70 before shard 1's reply (t=60) is delivered — a causality
        // violation the windows exist to prevent. All executors must agree.
        let seed = |s: u32, ctx: &mut ShardCtx<'_, u8>| {
            if s == 0 {
                ctx.schedule_at(t(0), 0);
                ctx.schedule_at(t(70), 9);
            } else {
                ctx.schedule_at(t(100), 9);
            }
        };
        let mut reference = vec![PingPong { log: Vec::new() }, PingPong { log: Vec::new() }];
        let ref_run = run_shards_reference(&mut reference, u64::MAX, seed);
        assert_eq!(ref_run.events, 5);
        for threads in [1, 2] {
            let mut fleet = vec![PingPong { log: Vec::new() }, PingPong { log: Vec::new() }];
            let run = run_shards(&mut fleet, threads, u64::MAX, seed);
            assert_eq!(run.events, ref_run.events, "at {threads} threads");
            for (s, (a, b)) in reference.iter().zip(&fleet).enumerate() {
                assert_eq!(a.log, b.log, "shard {s} diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn serial_does_not_drop_in_flight_mail_when_queues_drain() {
        // Regression: after shard 0's only event fires, every queue is
        // empty while its message to shard 1 is still in pending mail. The
        // run is over only when queues *and* mail are empty; returning on
        // empty queues alone silently drops the in-flight events.
        let seed = |s: u32, ctx: &mut ShardCtx<'_, u8>| {
            if s == 0 {
                ctx.schedule_at(t(0), 0);
            }
        };
        for threads in [1, 2] {
            let mut fleet = vec![PingPong { log: Vec::new() }, PingPong { log: Vec::new() }];
            let run = run_shards(&mut fleet, threads, u64::MAX, seed);
            // Opener on shard 0, its delivery on shard 1, the reply back.
            assert_eq!(run.events, 3, "in-flight mail lost at {threads} threads");
            assert_eq!(fleet[1].log, vec![(t(30), 1)]);
            assert_eq!(run.end_time, t(60));
        }
    }

    #[test]
    #[should_panic(expected = "below the lookahead bound")]
    fn send_below_lookahead_panics() {
        struct Hasty;
        impl ShardModel for Hasty {
            type Event = ();
            fn lookahead(&self) -> SimDuration {
                d(30)
            }
            fn handle(&mut self, _: (), ctx: &mut ShardCtx<'_, ()>) {
                ctx.send(1, d(5), ());
            }
        }
        let mut fleet = vec![Hasty, Hasty];
        run_shards(&mut fleet, 1, u64::MAX, |s, ctx| {
            if s == 0 {
                ctx.schedule_at(t(0), ());
            }
        });
    }

    #[test]
    #[should_panic(expected = "zero lookahead")]
    fn zero_lookahead_is_rejected() {
        struct NoBound;
        impl ShardModel for NoBound {
            type Event = ();
            fn lookahead(&self) -> SimDuration {
                SimDuration::ZERO
            }
            fn handle(&mut self, _: (), _: &mut ShardCtx<'_, ()>) {}
        }
        let mut fleet = vec![NoBound, NoBound];
        run_shards(&mut fleet, 2, u64::MAX, |_, _| {});
    }

    #[test]
    fn keys_order_equal_times_by_origin_then_counter() {
        let a = ShardKey {
            time: t(1),
            src: 0,
            counter: 5,
        };
        let b = ShardKey {
            time: t(1),
            src: 1,
            counter: 0,
        };
        let c = ShardKey {
            time: t(1),
            src: 0,
            counter: 6,
        };
        assert!(a < b && a < c && c < b);
    }
}
