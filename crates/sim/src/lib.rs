//! # rt-sim — deterministic discrete-event simulation engine
//!
//! The substrate every other crate in this workspace builds on. The
//! reproduction of Kotz & Ellis (1989) replaces the BBN Butterfly Plus with
//! a discrete-event simulation; this crate provides the engine: a virtual
//! clock ([`SimTime`]), a deterministic pending-event set, an event loop
//! ([`run`]), analytic contended resources ([`FifoServer`], [`SimLock`]),
//! reproducible random streams ([`Rng`]), and run statistics.
//!
//! Determinism guarantees: with the same model and seeds, every run produces
//! the identical event sequence — events at equal times fire in schedule
//! order, and all randomness flows from explicitly seeded [`Rng`] streams.
//!
//! ```
//! use rt_sim::{run, Model, Scheduler, SimDuration, SimTime};
//!
//! struct Pinger { count: u32 }
//! impl Model for Pinger {
//!     type Event = ();
//!     fn handle(&mut self, _e: (), sched: &mut Scheduler<()>) {
//!         self.count += 1;
//!         if self.count < 3 {
//!             sched.schedule_in(SimDuration::from_millis(10), ());
//!         }
//!     }
//! }
//!
//! let mut model = Pinger { count: 0 };
//! let mut sched = Scheduler::new();
//! sched.schedule_at(SimTime::ZERO, ());
//! let outcome = run(&mut model, &mut sched, u64::MAX);
//! assert_eq!(model.count, 3);
//! assert_eq!(outcome.end_time, SimTime::ZERO + SimDuration::from_millis(20));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod timeline;

pub use engine::{
    run, run_observed, run_until, run_with_stats, EngineStats, Model, ObservedEnd, RunOutcome,
    Scheduler,
};
pub use event::{EventId, EventQueue};
pub use resource::{Admission, FifoServer, SimLock};
pub use rng::Rng;
pub use shard::{run_shards, run_shards_reference, ShardCtx, ShardKey, ShardModel, ShardRun};
pub use stats::{Ratio, Sampled, Tally, TimeWeighted};
pub use time::{SimDuration, SimTime};
pub use timeline::Timeline;
