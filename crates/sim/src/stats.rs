//! Statistics collection for simulation runs.
//!
//! The paper reports means, distributions (CDFs), and ratios of measured
//! quantities. [`Tally`] accumulates streaming moments (Welford), [`Sampled`]
//! additionally retains every observation so percentiles/CDFs can be
//! extracted, and [`TimeWeighted`] integrates a piecewise-constant value
//! (e.g. disk queue length) over simulated time.

use crate::time::{SimDuration, SimTime};

/// Streaming count / mean / variance / min / max of a sequence of durations.
#[derive(Clone, Debug, Default)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<SimDuration>,
    max: Option<SimDuration>,
}

impl Tally {
    /// A fresh, empty tally.
    pub fn new() -> Self {
        Tally::default()
    }

    /// Record one observation.
    pub fn record(&mut self, d: SimDuration) {
        let x = d.as_nanos() as f64;
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
        self.max = Some(self.max.map_or(d, |m| m.max(d)));
    }

    /// Merge another tally into this one (parallel-safe reduction).
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.mean.round() as u64)
        }
    }

    /// Mean in fractional milliseconds (for reporting).
    pub fn mean_millis(&self) -> f64 {
        self.mean / 1.0e6
    }

    /// Population standard deviation, in fractional milliseconds.
    pub fn stddev_millis(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt() / 1.0e6
        }
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<SimDuration> {
        self.min
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<SimDuration> {
        self.max
    }

    /// Sum of all observations.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos((self.mean * self.count as f64).round() as u64)
    }
}

/// A tally that also keeps every observation, so percentiles and CDFs can be
/// computed after the run. Experiments here record at most a few tens of
/// thousands of observations, so retention is cheap.
#[derive(Clone, Debug, Default)]
pub struct Sampled {
    tally: Tally,
    samples: Vec<SimDuration>,
}

impl Sampled {
    /// A fresh, empty sampler.
    pub fn new() -> Self {
        Sampled::default()
    }

    /// Record one observation.
    pub fn record(&mut self, d: SimDuration) {
        self.tally.record(d);
        self.samples.push(d);
    }

    /// The streaming summary of the same observations.
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.tally.count()
    }

    /// Arithmetic mean, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        self.tally.mean()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method, or `None`
    /// if no observations were recorded.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((sorted.len() as f64) * q).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// Fraction of observations that are ≤ `threshold`.
    pub fn fraction_at_most(&self, threshold: SimDuration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.iter().filter(|&&d| d <= threshold).count();
        n as f64 / self.samples.len() as f64
    }

    /// All observations, in recording order.
    pub fn samples(&self) -> &[SimDuration] {
        &self.samples
    }
}

/// Integrates a piecewise-constant value over simulated time; used for
/// average queue lengths and device utilization.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_change: SimTime,
    value: f64,
    integral: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start integrating `initial` from time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_change: start,
            value: initial,
            integral: 0.0,
            max: initial,
        }
    }

    /// Set a new value at time `now` (which must not precede the previous
    /// change).
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.saturating_since(self.last_change).as_nanos() as f64;
        self.integral += self.value * dt;
        self.last_change = now;
        self.value = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Adjust the current value by `delta` at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Time-average of the value over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_change).as_nanos() as f64;
        let total_time = self.integral + self.value * dt;
        let span = now.as_nanos() as f64;
        if span == 0.0 {
            self.value
        } else {
            total_time / span
        }
    }

    /// Largest value ever set.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Current value.
    pub fn current(&self) -> f64 {
        self.value
    }
}

/// A hit/total ratio counter.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Record one event; `hit` says whether it counts toward the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `hits / total`, or 0 when empty.
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// `1 - value()`: the miss ratio when this counts hits.
    pub fn complement(&self) -> f64 {
        1.0 - self.value()
    }

    /// Merge another ratio (parallel-safe reduction).
    pub fn merge(&mut self, other: Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn tally_moments() {
        let mut t = Tally::new();
        for x in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            t.record(ms(x));
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean_millis() - 5.0).abs() < 1e-9);
        assert!((t.stddev_millis() - 2.0).abs() < 1e-9);
        assert_eq!(t.min(), Some(ms(2)));
        assert_eq!(t.max(), Some(ms(9)));
        assert_eq!(t.total(), ms(40));
    }

    #[test]
    fn tally_empty_is_zero() {
        let t = Tally::new();
        assert_eq!(t.mean(), SimDuration::ZERO);
        assert_eq!(t.count(), 0);
        assert_eq!(t.min(), None);
    }

    #[test]
    fn tally_merge_matches_sequential() {
        let mut a = Tally::new();
        let mut b = Tally::new();
        let mut whole = Tally::new();
        for x in 1..=10u64 {
            if x <= 4 {
                a.record(ms(x));
            } else {
                b.record(ms(x));
            }
            whole.record(ms(x));
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean_millis() - whole.mean_millis()).abs() < 1e-9);
        assert!((a.stddev_millis() - whole.stddev_millis()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn sampled_quantiles() {
        let mut s = Sampled::new();
        for x in 1..=100u64 {
            s.record(ms(x));
        }
        assert_eq!(s.quantile(0.5), Some(ms(50)));
        assert_eq!(s.quantile(0.0), Some(ms(1)));
        assert_eq!(s.quantile(1.0), Some(ms(100)));
        assert!((s.fraction_at_most(ms(70)) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn sampled_empty() {
        let s = Sampled::new();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.fraction_at_most(ms(1)), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
        w.set(SimTime::from_nanos(10), 2.0); // 0 for 10ns
        w.set(SimTime::from_nanos(30), 4.0); // 2 for 20ns
                                             // 4 for 10ns -> integral = 0 + 40 + 40 = 80 over 40ns
        assert!((w.average(SimTime::from_nanos(40)) - 2.0).abs() < 1e-9);
        assert_eq!(w.max(), 4.0);
        assert_eq!(w.current(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 1.0);
        w.add(SimTime::from_nanos(10), 1.0);
        assert_eq!(w.current(), 2.0);
        w.add(SimTime::from_nanos(20), -2.0);
        assert_eq!(w.current(), 0.0);
    }

    #[test]
    fn ratio_basics() {
        let mut r = Ratio::default();
        r.record(true);
        r.record(false);
        r.record(true);
        r.record(true);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 4);
        assert!((r.value() - 0.75).abs() < 1e-9);
        assert!((r.complement() - 0.25).abs() < 1e-9);
        let mut other = Ratio::default();
        other.record(false);
        r.merge(other);
        assert_eq!(r.total(), 5);
    }
}
