//! Time-series sampling of simulation quantities.
//!
//! A [`Timeline`] records `(time, value)` observations of some quantity —
//! outstanding prefetches, disk queue depth, processes at a barrier — and
//! can resample them onto a fixed grid or render a compact text sparkline.
//! The paper's "on-going experiments ... substantiating cause-and-effect
//! relationships" need exactly this view: not just a run's averages, but
//! the shape of its behaviour over time.

use crate::time::SimTime;

/// A recorded step function: the value changes at each observation and
/// holds until the next.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    points: Vec<(SimTime, f64)>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Record that the quantity took `value` at `time`. Times must be
    /// non-decreasing (simulation time is monotone); equal-time updates
    /// overwrite.
    pub fn record(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.points.last_mut() {
            debug_assert!(time >= last.0, "timeline must advance");
            if last.0 == time {
                last.1 = value;
                return;
            }
        }
        self.points.push((time, value));
    }

    /// Adjust the current value by `delta` at `time` (counter-style use).
    pub fn add(&mut self, time: SimTime, delta: f64) {
        let current = self.current();
        self.record(time, current + delta);
    }

    /// The most recent value (0 before any observation).
    pub fn current(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, v)| v)
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw observations.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The value at an arbitrary instant (step-function semantics; 0
    /// before the first observation).
    pub fn value_at(&self, time: SimTime) -> f64 {
        match self.points.partition_point(|&(t, _)| t <= time) {
            0 => 0.0,
            n => self.points[n - 1].1,
        }
    }

    /// Resample onto `buckets` equal intervals of `[start, end]`, taking
    /// the value at each bucket's end.
    pub fn resample(&self, start: SimTime, end: SimTime, buckets: usize) -> Vec<f64> {
        assert!(buckets > 0, "need at least one bucket");
        assert!(end >= start, "inverted window");
        let span = end.saturating_since(start).as_nanos();
        (1..=buckets)
            .map(|i| {
                let t =
                    start + crate::time::SimDuration::from_nanos(span * i as u64 / buckets as u64);
                self.value_at(t)
            })
            .collect()
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Render a text sparkline of the window: one character per bucket,
    /// scaled to the window's maximum.
    pub fn sparkline(&self, start: SimTime, end: SimTime, buckets: usize) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let samples = self.resample(start, end, buckets);
        let max = samples.iter().copied().fold(0.0, f64::max);
        if max == 0.0 {
            return LEVELS[0].to_string().repeat(buckets);
        }
        samples
            .iter()
            .map(|&v| {
                let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn step_function_semantics() {
        let mut tl = Timeline::new();
        tl.record(t(10), 2.0);
        tl.record(t(20), 5.0);
        assert_eq!(tl.value_at(t(5)), 0.0);
        assert_eq!(tl.value_at(t(10)), 2.0);
        assert_eq!(tl.value_at(t(15)), 2.0);
        assert_eq!(tl.value_at(t(20)), 5.0);
        assert_eq!(tl.value_at(t(99)), 5.0);
        assert_eq!(tl.current(), 5.0);
        assert_eq!(tl.max(), 5.0);
    }

    #[test]
    fn equal_time_updates_overwrite() {
        let mut tl = Timeline::new();
        tl.record(t(10), 1.0);
        tl.record(t(10), 3.0);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.value_at(t(10)), 3.0);
    }

    #[test]
    fn counter_style_add() {
        let mut tl = Timeline::new();
        tl.add(t(1), 1.0);
        tl.add(t(2), 1.0);
        tl.add(t(3), -2.0);
        assert_eq!(tl.value_at(t(2)), 2.0);
        assert_eq!(tl.current(), 0.0);
    }

    #[test]
    fn resample_grid() {
        let mut tl = Timeline::new();
        tl.record(t(0), 1.0);
        tl.record(t(50), 3.0);
        let samples = tl.resample(t(0), t(100), 4);
        assert_eq!(samples, vec![1.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn sparkline_shapes() {
        let mut tl = Timeline::new();
        tl.record(t(0), 0.0);
        tl.record(t(50), 8.0);
        let s = tl.sparkline(t(0), t(100), 4);
        assert_eq!(s.chars().count(), 4);
        let flat = Timeline::new().sparkline(t(0), t(100), 5);
        assert_eq!(flat, "▁▁▁▁▁");
    }

    #[test]
    fn empty_timeline_defaults() {
        let tl = Timeline::new();
        assert!(tl.is_empty());
        assert_eq!(tl.current(), 0.0);
        assert_eq!(tl.value_at(t(100)), 0.0);
        assert_eq!(tl.max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        Timeline::new().resample(t(0), t(1), 0);
    }
}
