//! Simulated time.
//!
//! The simulation clock is a 64-bit count of **nanoseconds** since the start
//! of the run. Nanosecond resolution lets the cost model express sub-micro-
//! second NUMA memory reference costs while still covering ~584 years of
//! simulated time, far beyond any experiment in this repository.
//!
//! Two newtypes keep instants and durations from being mixed up:
//! [`SimTime`] is a point on the simulation clock, [`SimDuration`] is a
//! length of simulated time. Arithmetic between them is defined the same way
//! as for `std::time::{Instant, Duration}`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The start of simulated time (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far away"
    /// sentinel for logical wake-up times that are not yet known.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the start of the run.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// This instant expressed as fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// This instant expressed as fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * NANOS_PER_MILLI as f64).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Difference, saturating to zero.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is uncertain.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(
            SimDuration::from_millis(30).as_nanos(),
            30 * NANOS_PER_MILLI
        );
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        let u = t + SimDuration::from_millis(5);
        assert_eq!(u - t, SimDuration::from_millis(5));
        assert_eq!(u - SimDuration::from_millis(15), SimTime::ZERO);
        assert_eq!(t.max(u), u);
        assert_eq!(t.min(u), t);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(200);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_sub_panics_on_underflow() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        let total: SimDuration = [d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(30));
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_millis_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000);
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert!((SimTime::from_nanos(NANOS_PER_SEC).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(format!("{}", SimDuration::from_millis(30)), "30.000ms");
        assert_eq!(format!("{}", SimTime::from_nanos(1_500_000)), "1.500ms");
    }

    #[test]
    fn saturating_sub_duration() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_millis(1));
    }
}
