//! Contended, FIFO-ordered simulated resources.
//!
//! Two analytic single-server primitives cover every contended resource in
//! the testbed:
//!
//! * [`FifoServer`] — a work-conserving FIFO server (a disk, a DMA channel):
//!   callers submit work with a known service time and get back the start
//!   and completion instants. Because service is FCFS and service times are
//!   known at submission, the queue never needs to be materialized — the
//!   server just tracks when it next falls idle. Queueing delay emerges
//!   naturally, which is exactly the paper's "disk response time" contention
//!   metric.
//!
//! * [`SimLock`] — a FIFO lock protecting a shared data structure (the block
//!   cache index on the Butterfly's remote shared memory). A caller asks to
//!   acquire at time *t* holding for *h*; it is granted the earliest instant
//!   the lock is free, and the lock stays held until grant + *h*. Lock
//!   waiting time is the NUMA/data-structure contention the paper reports
//!   rising when all processors pound the I/O subsystem.

use crate::stats::{Tally, TimeWeighted};
use crate::time::{SimDuration, SimTime};

/// Completed admission of one request into a [`FifoServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// When service begins (>= submission time).
    pub start: SimTime,
    /// When service completes.
    pub completion: SimTime,
}

impl Admission {
    /// Time spent waiting in queue before service began.
    pub fn queue_delay(&self, submitted: SimTime) -> SimDuration {
        self.start.saturating_since(submitted)
    }

    /// Total time from submission to completion.
    pub fn response(&self, submitted: SimTime) -> SimDuration {
        self.completion.saturating_since(submitted)
    }
}

/// A work-conserving FIFO single server.
#[derive(Clone, Debug)]
pub struct FifoServer {
    free_at: SimTime,
    busy: SimDuration,
    ops: u64,
    queue_delay: Tally,
    response: Tally,
    queue_len: TimeWeighted,
}

impl FifoServer {
    /// An idle server at time zero.
    pub fn new() -> Self {
        FifoServer {
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            ops: 0,
            queue_delay: Tally::new(),
            response: Tally::new(),
            queue_len: TimeWeighted::new(SimTime::ZERO, 0.0),
        }
    }

    /// Submit one request at `now` requiring `service` time; returns when it
    /// starts and completes. Requests submitted earlier are always served
    /// first (FIFO).
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> Admission {
        let start = self.free_at.max(now);
        let completion = start + service;
        // Queue length accounting: the request waits in queue during
        // [now, start). Approximate the queue-length curve with entry/exit
        // impulses; exact shape is irrelevant, only the time-average is read.
        if start > now {
            self.queue_len.add(now, 1.0);
            self.queue_len.add(start, -1.0);
        }
        self.free_at = completion;
        self.busy += service;
        self.ops += 1;
        let adm = Admission { start, completion };
        self.queue_delay.record(adm.queue_delay(now));
        self.response.record(adm.response(now));
        adm
    }

    /// When the server next falls idle (equals the last completion time).
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Number of requests served (or in service / queued).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Aggregate busy time (sum of service times).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Fraction of `[0, now]` the server was busy. Values can exceed 1.0 if
    /// queued work extends beyond `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_nanos();
        if span == 0 {
            0.0
        } else {
            self.busy.as_nanos() as f64 / span as f64
        }
    }

    /// Distribution of time spent queued before service.
    pub fn queue_delay(&self) -> &Tally {
        &self.queue_delay
    }

    /// Distribution of submission-to-completion times (the paper's "disk
    /// response time").
    pub fn response(&self) -> &Tally {
        &self.response
    }

    /// Time-averaged queue length over `[0, now]`.
    pub fn avg_queue_len(&self, now: SimTime) -> f64 {
        self.queue_len.average(now)
    }
}

impl Default for FifoServer {
    fn default() -> Self {
        Self::new()
    }
}

/// A FIFO lock with known hold times, modelling a contended shared
/// data structure in remote memory.
#[derive(Clone, Debug)]
pub struct SimLock {
    free_at: SimTime,
    acquisitions: u64,
    wait: Tally,
    hold: Tally,
}

impl SimLock {
    /// An unheld lock.
    pub fn new() -> Self {
        SimLock {
            free_at: SimTime::ZERO,
            acquisitions: 0,
            wait: Tally::new(),
            hold: Tally::new(),
        }
    }

    /// Request the lock at `now`, holding it for `hold`. Returns the grant
    /// time; the critical section runs `[grant, grant + hold)`. Requests are
    /// granted in submission order.
    pub fn acquire(&mut self, now: SimTime, hold: SimDuration) -> SimTime {
        let grant = self.free_at.max(now);
        self.free_at = grant + hold;
        self.acquisitions += 1;
        self.wait.record(grant.saturating_since(now));
        self.hold.record(hold);
        grant
    }

    /// Convenience: acquire at `now` and return when the critical section
    /// *ends* (grant + hold).
    pub fn acquire_until_done(&mut self, now: SimTime, hold: SimDuration) -> SimTime {
        self.acquire(now, hold) + hold
    }

    /// Number of acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Distribution of lock waiting times (contention).
    pub fn wait(&self) -> &Tally {
        &self.wait
    }

    /// Distribution of hold times.
    pub fn hold(&self) -> &Tally {
        &self.hold
    }

    /// When the lock next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Reclaim the tail critical section of a holder that vanished (a
    /// crashed node): if the lock's next-free instant is exactly `cs_end`
    /// — the victim is the last holder in line — and its section has not
    /// yet ended, pull the `hold` back so later requesters are granted
    /// earlier. Returns whether the tail was reclaimed; `false` means
    /// other acquirers already queued behind the victim and its lease is
    /// left to expire naturally (the analytic queue cannot be reshuffled
    /// once later grants were handed out).
    pub fn reclaim_tail(&mut self, now: SimTime, cs_end: SimTime, hold: SimDuration) -> bool {
        if self.free_at == cs_end && cs_end > now {
            // `cs_end` was produced by `acquire` as grant + hold, so the
            // subtraction recovers the grant instant (never underflows).
            self.free_at = now.max(cs_end - hold);
            true
        } else {
            false
        }
    }
}

impl Default for SimLock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::ZERO + ms(x)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new();
        let a = s.submit(at(10), ms(30));
        assert_eq!(a.start, at(10));
        assert_eq!(a.completion, at(40));
        assert_eq!(a.queue_delay(at(10)), SimDuration::ZERO);
        assert_eq!(a.response(at(10)), ms(30));
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = FifoServer::new();
        let a = s.submit(at(0), ms(30));
        let b = s.submit(at(5), ms(30));
        let c = s.submit(at(6), ms(30));
        assert_eq!(a.completion, at(30));
        assert_eq!(b.start, at(30));
        assert_eq!(b.completion, at(60));
        assert_eq!(c.start, at(60));
        assert_eq!(c.queue_delay(at(6)), ms(54));
        assert_eq!(s.ops(), 3);
        assert_eq!(s.busy_time(), ms(90));
    }

    #[test]
    fn server_goes_idle_between_bursts() {
        let mut s = FifoServer::new();
        s.submit(at(0), ms(10));
        let b = s.submit(at(50), ms(10));
        assert_eq!(b.start, at(50));
        assert!((s.utilization(at(100)) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn server_response_stats_accumulate() {
        let mut s = FifoServer::new();
        s.submit(at(0), ms(30));
        s.submit(at(0), ms(30));
        assert_eq!(s.response().count(), 2);
        assert!((s.response().mean_millis() - 45.0).abs() < 1e-9);
        assert!((s.queue_delay().mean_millis() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn lock_grants_in_order() {
        let mut l = SimLock::new();
        let g1 = l.acquire(at(0), ms(2));
        let g2 = l.acquire(at(1), ms(2));
        let g3 = l.acquire(at(1), ms(2));
        assert_eq!(g1, at(0));
        assert_eq!(g2, at(2));
        assert_eq!(g3, at(4));
        assert_eq!(l.acquisitions(), 3);
        assert!((l.wait().mean_millis() - (0.0 + 1.0 + 3.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn uncontended_lock_is_free() {
        let mut l = SimLock::new();
        let g = l.acquire(at(10), ms(1));
        assert_eq!(g, at(10));
        let done = l.acquire_until_done(at(20), ms(1));
        assert_eq!(done, at(21), "grant at 20 plus a 1 ms hold");
        assert_eq!(l.wait().max(), Some(SimDuration::ZERO));
    }

    #[test]
    fn reclaim_tail_frees_the_last_holder() {
        let mut l = SimLock::new();
        let g = l.acquire(at(10), ms(5)); // holds [10, 15)
        assert_eq!(g, at(10));
        // The holder crashes at t=12: the tail is reclaimed and the lock
        // is free immediately.
        assert!(l.reclaim_tail(at(12), at(15), ms(5)));
        assert_eq!(l.free_at(), at(12));
        // A new acquirer is granted right away.
        assert_eq!(l.acquire(at(12), ms(1)), at(12));
    }

    #[test]
    fn reclaim_tail_of_queued_holder_pulls_back_to_grant() {
        let mut l = SimLock::new();
        l.acquire(at(0), ms(10)); // holds [0, 10)
        let done = l.acquire_until_done(at(1), ms(3)); // queued: [10, 13)
        assert_eq!(done, at(13));
        // The queued holder crashes before its grant: reclaim returns the
        // lock to the first holder's release instant.
        assert!(l.reclaim_tail(at(2), at(13), ms(3)));
        assert_eq!(l.free_at(), at(10));
    }

    #[test]
    fn reclaim_tail_declines_when_not_the_tail() {
        let mut l = SimLock::new();
        let done = l.acquire_until_done(at(0), ms(5)); // [0, 5)
        l.acquire(at(1), ms(5)); // queued behind: free_at = 10

        // First holder crashes, but another acquirer already queued behind
        // it — the lease must expire naturally.
        assert!(!l.reclaim_tail(at(2), done, ms(5)));
        assert_eq!(l.free_at(), at(10));
        // A section that already ended is likewise left alone.
        assert!(!l.reclaim_tail(at(20), at(10), ms(5)));
    }

    #[test]
    fn avg_queue_len_reflects_waiting() {
        let mut s = FifoServer::new();
        s.submit(at(0), ms(10));
        s.submit(at(0), ms(10)); // waits 10ms in queue
                                 // Over [0, 20]: one request queued for 10ms -> average 0.5.
        assert!((s.avg_queue_len(at(20)) - 0.5).abs() < 1e-9);
    }
}
