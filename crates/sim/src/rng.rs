//! Deterministic pseudo-random number generation.
//!
//! Every stochastic element of an experiment (compute delays, random portion
//! lengths, …) draws from a [`Rng`] seeded from the experiment
//! configuration, so a run is exactly reproducible from its config. We
//! implement xoshiro256** (Blackman & Vigna) with a SplitMix64 seeder rather
//! than depending on a particular external generator whose stream might
//! change across crate versions: the figure-reproduction harness relies on
//! byte-stable streams.
//!
//! [`Rng::split`] derives an independent child generator, used to give each
//! simulated processor its own stream so that adding a draw on one processor
//! does not perturb the others.

use crate::time::SimDuration;

/// SplitMix64 step; used for seeding and stream splitting.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256**).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed. Distinct seeds give
    /// independent-looking streams; the all-zero internal state is
    /// unreachable because SplitMix64 never emits four zeros in a row.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator keyed by `stream`. Children
    /// with different keys (or from different parents) do not overlap in
    /// practice.
    pub fn split(&self, stream: u64) -> Rng {
        // Mix the parent state with the stream key through SplitMix64 so
        // that child streams decorrelate even for adjacent keys.
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`, with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    /// Uses Lemire's multiply-shift with rejection for exact uniformity.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below called with bound 0");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`. Panics if
    /// `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range_inclusive with lo > hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Sample an exponentially distributed value with the given mean, by
    /// inversion. Returns 0 when the mean is 0 (the paper's "no added
    /// computation" configuration).
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        // 1 - f64() lies in (0, 1]; ln of it is finite and <= 0.
        let u = 1.0 - self.f64();
        let x = -u.ln() * mean.as_nanos() as f64;
        SimDuration::from_nanos(x.round() as u64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = Rng::seeded(42);
        let mut b = Rng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let parent = Rng::seeded(7);
        let mut c1 = parent.split(3);
        let mut c2 = parent.split(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent.split(4);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seeded(9);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = Rng::seeded(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Rng::seeded(13);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            match r.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Rng::seeded(17);
        let mean = SimDuration::from_millis(30);
        let n = 20_000u64;
        let total: u128 = (0..n).map(|_| r.exponential(mean).as_nanos() as u128).sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_nanos() as f64;
        assert!(
            (avg - expect).abs() / expect < 0.03,
            "sample mean {avg} too far from {expect}"
        );
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut r = Rng::seeded(19);
        assert_eq!(r.exponential(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seeded(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in sorted order");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seeded(29);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
