//! The pending-event set.
//!
//! A binary heap keyed on `(time, sequence)`: events at equal simulated
//! times fire in the order they were scheduled, which makes runs fully
//! deterministic — a property the reproduction harness depends on.
//!
//! Payloads live out-of-line in a slab so each heap entry is a fixed
//! 16 bytes (time, sequence, slot) regardless of the payload type, and
//! cancellation is a generation-counter check on the slot instead of the
//! historical sorted-tombstone scan: [`EventId`] records the slot and its
//! generation at schedule time; cancelling flips the slot's live flag, and
//! the slot is recycled (generation bumped) only when the heap entry drains
//! past it, so a stale id can never cancel a later event that reused the
//! slot.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled. Stale ids (events
/// that already fired or were already cancelled) are recognized and
/// rejected, even after their slot has been reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// A fixed-size heap entry; the payload lives in the slot slab.
#[derive(Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u32,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One slab slot: the payload of a scheduled event plus the generation
/// counter that invalidates old [`EventId`]s when the slot is reused.
#[derive(Clone)]
struct Slot<E> {
    gen: u32,
    live: bool,
    payload: Option<E>,
}

/// A time-ordered queue of simulation events.
///
/// Cloning (with `E: Clone`) snapshots the entire pending set — heap,
/// slab, and sequence counter — so a cloned queue replays the exact same
/// pop sequence as the original. This is the foundation of world
/// snapshot/clone: fork a warmed-up simulation instead of replaying its
/// prefix.
#[derive(Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u32,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedule `payload` to fire at `time`. Events already in the past are
    /// permitted (they fire "now"); the engine asserts monotonicity at pop.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq = self
            .next_seq
            .checked_add(1)
            .expect("event sequence space exhausted");
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.payload.is_none(), "free slot holds a payload");
                s.live = true;
                s.payload = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slot space exhausted");
                self.slots.push(Slot {
                    gen: 0,
                    live: true,
                    payload: Some(payload),
                });
                slot
            }
        };
        self.heap.push(Entry { time, seq, slot });
        self.live += 1;
        EventId {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending. Cancelling twice, or after the event fired, is a
    /// no-op returning `false` — the generation counter recognizes stale
    /// ids even once the slot has been reused by a later event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(slot) if slot.gen == id.gen && slot.live => {
                slot.live = false;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Remove and return the earliest live event, as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let slot = &mut self.slots[entry.slot as usize];
            let live = slot.live;
            let payload = slot.payload.take().expect("heap entry with empty slot");
            // The slot is recycled only here — after its heap entry drained
            // — so every pending heap entry points at its own occupancy.
            slot.live = false;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(entry.slot);
            if live {
                self.live -= 1;
                return Some((entry.time, payload));
            }
        }
        None
    }

    /// The timestamp of the earliest *live* event without removing it.
    /// Cancelled entries still draining through the heap are skipped, so
    /// this agrees exactly with what [`EventQueue::pop`] would return.
    /// Linear in the pending-entry count — fine for its diagnostic
    /// callers, wrong for the hot loop (which pops instead of peeking).
    pub fn peek_time(&self) -> Option<SimTime> {
        // A slot recycles only when its heap entry drains, so each entry's
        // slot `live` flag describes that entry, not a later occupant.
        self.heap
            .iter()
            .filter(|e| self.slots[e.slot as usize].live)
            .max() // reversed `Ord`: the maximum is the earliest (time, seq)
            .map(|e| e.time)
    }

    /// Number of live (scheduled, not cancelled, not fired) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a), "fired events cannot be cancelled");
    }

    #[test]
    fn stale_id_does_not_cancel_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.pop();
        // "b" reuses a's slot (single free slot); the stale id must not
        // touch it.
        let b = q.schedule(t(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(!q.cancel(b));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn len_drops_at_cancel() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1, "cancelled events leave the live count");
    }

    #[test]
    fn peek_time_sees_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(9), ());
        q.schedule(t(3), ());
        assert_eq!(q.peek_time(), Some(t(3)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10);
        q.schedule(t(5), 5);
        assert_eq!(q.pop(), Some((t(5), 5)));
        q.schedule(t(7), 7);
        q.schedule(t(6), 6);
        assert_eq!(q.pop(), Some((t(6), 6)));
        assert_eq!(q.pop(), Some((t(7), 7)));
        assert_eq!(q.pop(), Some((t(10), 10)));
    }

    #[test]
    fn heap_entries_are_sixteen_bytes() {
        assert_eq!(std::mem::size_of::<Entry>(), 16);
    }

    #[test]
    fn slots_recycle() {
        let mut q = EventQueue::new();
        for round in 0..100u32 {
            q.schedule(t(round as u64), round);
            assert_eq!(q.pop(), Some((t(round as u64), round)));
        }
        assert!(q.slots.len() <= 2, "steady-state churn must reuse slots");
    }
}
