//! The pending-event set.
//!
//! A binary heap keyed on `(time, sequence)`: events at equal simulated
//! times fire in the order they were scheduled, which makes runs fully
//! deterministic — a property the reproduction harness depends on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    cancelled: bool,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    // Sequence numbers of cancelled events not yet popped. Kept sorted-free:
    // cancellation is rare, so a linear membership vec would also do, but a
    // sorted Vec with binary search keeps worst cases predictable.
    cancelled: Vec<u64>,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: Vec::new(),
            live: 0,
        }
    }

    /// Schedule `payload` to fire at `time`. Events already in the past are
    /// permitted (they fire "now"); the engine asserts monotonicity at pop.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            cancelled: false,
            payload,
        });
        self.live += 1;
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending. Cancelling twice (or after the event fired) is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.cancelled.binary_search(&id.0) {
            Ok(_) => false,
            Err(pos) => {
                if id.0 >= self.next_seq {
                    return false;
                }
                // We cannot know cheaply whether it already fired; the pop
                // path compensates `live` only for entries actually skipped,
                // so track membership and verify on pop.
                self.cancelled.insert(pos, id.0);
                true
            }
        }
    }

    /// Remove and return the earliest live event, as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if let Ok(pos) = self.cancelled.binary_search(&entry.seq) {
                self.cancelled.remove(pos);
                self.live -= 1;
                continue;
            }
            if entry.cancelled {
                self.live -= 1;
                continue;
            }
            self.live -= 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The timestamp of the earliest live event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Skipping cancelled entries would require popping; since
        // cancellation is rare we accept a cancelled head here — callers
        // only use this for progress reporting, never for correctness.
        self.heap.peek().map(|e| e.time)
    }

    /// Number of live (scheduled, not cancelled, not fired) events.
    ///
    /// Note: events cancelled with an `EventId` that already fired are
    /// counted until their tombstone is cleaned; this is an upper bound.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        // Tombstone still pending until popped past.
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(9), ());
        q.schedule(t(3), ());
        assert_eq!(q.peek_time(), Some(t(3)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10);
        q.schedule(t(5), 5);
        assert_eq!(q.pop(), Some((t(5), 5)));
        q.schedule(t(7), 7);
        q.schedule(t(6), 6);
        assert_eq!(q.pop(), Some((t(6), 6)));
        assert_eq!(q.pop(), Some((t(7), 7)));
        assert_eq!(q.pop(), Some((t(10), 10)));
    }
}
