//! Physical block allocation across the parallel disks.
//!
//! The allocator hands out physical extents so that any number of files —
//! interleaved or contiguous — coexist without overlapping. Interleaved
//! files consume whole *stripes* (one block per disk at the same physical
//! offset on every disk); contiguous files consume a run of blocks on one
//! disk. A per-disk high-water mark keeps both kinds disjoint.

use rt_disk::DiskId;

/// Allocation failure reasons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// The target disk does not exist.
    NoSuchDisk,
    /// The requested size was zero.
    EmptyFile,
}

/// Per-disk high-water-mark allocator.
#[derive(Clone, Debug)]
pub struct Allocator {
    /// Next free physical block on each disk.
    next_free: Vec<u32>,
}

impl Allocator {
    /// An allocator over `disks` empty devices.
    pub fn new(disks: u16) -> Self {
        assert!(disks > 0, "need at least one disk");
        Allocator {
            next_free: vec![0; disks as usize],
        }
    }

    /// Number of disks managed.
    pub fn disks(&self) -> u16 {
        self.next_free.len() as u16
    }

    /// Allocate `blocks` interleaved round-robin over all disks. Returns
    /// the physical stripe offset where the extent begins: logical block
    /// *i* of the extent lives on disk `i mod D` at physical offset
    /// `base + i / D`.
    pub fn alloc_interleaved(&mut self, blocks: u32) -> Result<u32, AllocError> {
        if blocks == 0 {
            return Err(AllocError::EmptyFile);
        }
        let d = self.next_free.len() as u32;
        // The stripe must start above every disk's high-water mark.
        let base = *self.next_free.iter().max().expect("at least one disk");
        let stripes = blocks.div_ceil(d);
        for nf in &mut self.next_free {
            *nf = base + stripes;
        }
        Ok(base)
    }

    /// Allocate `blocks` contiguously on `disk`; returns the physical
    /// offset of the first block.
    pub fn alloc_contiguous(&mut self, disk: DiskId, blocks: u32) -> Result<u32, AllocError> {
        if blocks == 0 {
            return Err(AllocError::EmptyFile);
        }
        let nf = self
            .next_free
            .get_mut(disk.index())
            .ok_or(AllocError::NoSuchDisk)?;
        let base = *nf;
        *nf += blocks;
        Ok(base)
    }

    /// Physical blocks in use on `disk`.
    pub fn used_on(&self, disk: DiskId) -> u32 {
        self.next_free.get(disk.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_extents_do_not_overlap() {
        let mut a = Allocator::new(4);
        let b1 = a.alloc_interleaved(10).unwrap(); // 3 stripes
        let b2 = a.alloc_interleaved(4).unwrap(); // 1 stripe
        assert_eq!(b1, 0);
        assert_eq!(b2, 3);
        assert_eq!(a.used_on(DiskId(0)), 4);
    }

    #[test]
    fn contiguous_extents_stack_per_disk() {
        let mut a = Allocator::new(2);
        assert_eq!(a.alloc_contiguous(DiskId(0), 5).unwrap(), 0);
        assert_eq!(a.alloc_contiguous(DiskId(0), 3).unwrap(), 5);
        assert_eq!(a.alloc_contiguous(DiskId(1), 2).unwrap(), 0);
        assert_eq!(a.used_on(DiskId(0)), 8);
        assert_eq!(a.used_on(DiskId(1)), 2);
    }

    #[test]
    fn mixed_allocations_stay_disjoint() {
        let mut a = Allocator::new(2);
        let c = a.alloc_contiguous(DiskId(0), 3).unwrap();
        assert_eq!(c, 0);
        // The interleaved extent must start above disk 0's mark.
        let i = a.alloc_interleaved(4).unwrap();
        assert_eq!(i, 3);
        // And a later contiguous extent above the stripes.
        let c2 = a.alloc_contiguous(DiskId(1), 1).unwrap();
        assert_eq!(c2, 5);
    }

    #[test]
    fn errors() {
        let mut a = Allocator::new(2);
        assert_eq!(a.alloc_interleaved(0), Err(AllocError::EmptyFile));
        assert_eq!(
            a.alloc_contiguous(DiskId(9), 1),
            Err(AllocError::NoSuchDisk)
        );
        assert_eq!(a.alloc_contiguous(DiskId(0), 0), Err(AllocError::EmptyFile));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        let _ = Allocator::new(0);
    }
}
