//! File metadata.

use rt_disk::FileLayout;

/// Identifies an open file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

impl FileId {
    /// Index for the file table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a file is spread over the disks — the choice §II of the paper
/// motivates: interleaving parallelizes sequential scans, the traditional
/// single-disk placement serializes them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Striping {
    /// Round-robin over all disks (Bridge's layout, the paper's default).
    Interleaved,
    /// Contiguous on one chosen disk (the uniprocessor baseline).
    OnDisk(u16),
}

/// Metadata of one file.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Human-readable name, unique within the file system.
    pub name: String,
    /// Length in blocks.
    pub blocks: u32,
    /// Requested striping.
    pub striping: Striping,
    /// Resolved physical layout (block → disk/offset mapping).
    pub layout: FileLayout,
    /// Replica layouts, one per extra copy: rotated interleaves so each
    /// block's copies live on different devices. Empty for unreplicated
    /// files.
    pub replicas: Vec<FileLayout>,
    /// First block of this file in the global block namespace.
    pub base: u32,
}

impl FileMeta {
    /// Does `block` fall inside this file?
    pub fn contains_block(&self, block: u32) -> bool {
        block < self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_disk::{Contiguous, DiskId};

    #[test]
    fn file_id_index() {
        assert_eq!(FileId(7).index(), 7);
    }

    #[test]
    fn contains_block_checks_length() {
        let meta = FileMeta {
            name: "data".into(),
            blocks: 10,
            striping: Striping::OnDisk(0),
            layout: FileLayout::Contiguous(Contiguous::new(DiskId(0), 0)),
            replicas: Vec::new(),
            base: 0,
        };
        assert!(meta.contains_block(0));
        assert!(meta.contains_block(9));
        assert!(!meta.contains_block(10));
    }
}
