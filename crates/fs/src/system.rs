//! The file system proper: names, metadata, allocation, and the read path
//! down to the parallel disks.
//!
//! Files are identified by name at creation/open and by [`FileId`]
//! afterwards. Each file owns a physical extent handed out by the
//! [`Allocator`]; reads map `(file, logical block)` through the file's
//! layout onto a disk and physical offset, and travel the event-driven
//! [`DiskSubsystem`] (submit now, complete later). Because several files
//! can be in flight at once, in-flight requests are tracked per disk so a
//! completion can be attributed back to its file.

use std::collections::HashMap;

use rt_disk::{
    BlockId, Contiguous, Discipline, DiskId, DiskSubsystem, FetchKind, FileLayout, Interleaved,
    Layout, ProcId, Service,
};
use rt_sim::{Rng, SimTime};

use crate::alloc::{AllocError, Allocator};
use crate::file::{FileId, FileMeta, Striping};

/// Errors from file-system operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// A file with this name already exists.
    Exists(String),
    /// No file with this name.
    NotFound(String),
    /// The file id is stale or invalid.
    BadFile,
    /// The block number is outside the file.
    OutOfRange {
        /// The offending block.
        block: u32,
        /// The file's length.
        len: u32,
    },
    /// Allocation failed.
    Alloc(AllocError),
}

/// A read that started service (immediately at submit, or later when a
/// completion dispatched it from the queue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsStarted {
    /// The device serving it.
    pub disk: DiskId,
    /// The file whose block is being fetched.
    pub file: FileId,
    /// The logical block within that file.
    pub block: BlockId,
    /// When the I/O completes; call [`FileSystem::complete`] then.
    pub completion: SimTime,
}

/// A completed read, attributed to its file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsCompleted {
    /// The file whose block finished.
    pub file: FileId,
    /// The logical block within that file.
    pub block: BlockId,
}

/// The interleaved file system over parallel independent disks.
pub struct FileSystem {
    disks: DiskSubsystem,
    allocator: Allocator,
    files: Vec<FileMeta>,
    names: HashMap<String, FileId>,
    /// Reverse map: global block number → file. Keyed by the file's global
    /// base; found by range search over sorted bases.
    bases: Vec<(u32, FileId)>,
    next_base: u32,
}

impl FileSystem {
    /// A file system over `disk_count` devices with the given service model
    /// and queue discipline.
    pub fn new(disk_count: u16, service: Service, discipline: Discipline, rng: &Rng) -> Self {
        let disks = DiskSubsystem::new(
            disk_count,
            service,
            discipline,
            // The subsystem's layout maps *global* block numbers; each
            // file's own layout is applied before submission, so the
            // subsystem layer uses the identity interleave only for its
            // own bookkeeping. We bypass it by placing per file (see
            // `read`), so any layout works here; use the interleave.
            FileLayout::interleaved(disk_count),
            rng,
        );
        FileSystem {
            allocator: Allocator::new(disk_count),
            disks,
            files: Vec::new(),
            names: HashMap::new(),
            bases: Vec::new(),
            next_base: 0,
        }
    }

    /// The paper's machine: 20 disks, 30 ms fixed latency, FCFS.
    pub fn paper(rng: &Rng) -> Self {
        FileSystem::new(20, Service::paper(), Discipline::Fifo, rng)
    }

    /// Create a file of `blocks` blocks with the given striping; returns
    /// its id. Names are unique.
    pub fn create(
        &mut self,
        name: &str,
        blocks: u32,
        striping: Striping,
    ) -> Result<FileId, FsError> {
        if self.names.contains_key(name) {
            return Err(FsError::Exists(name.to_string()));
        }
        let layout = match striping {
            Striping::Interleaved => {
                let base = self
                    .allocator
                    .alloc_interleaved(blocks)
                    .map_err(FsError::Alloc)?;
                FileLayout::Interleaved(Interleaved::new(self.allocator.disks(), base))
            }
            Striping::OnDisk(d) => {
                let base = self
                    .allocator
                    .alloc_contiguous(DiskId(d), blocks)
                    .map_err(FsError::Alloc)?;
                FileLayout::Contiguous(Contiguous::new(DiskId(d), base))
            }
        };
        let id = FileId(self.files.len() as u32);
        self.files.push(FileMeta {
            name: name.to_string(),
            blocks,
            striping,
            layout,
            base: self.next_base,
        });
        self.names.insert(name.to_string(), id);
        self.bases.push((self.next_base, id));
        self.next_base = self
            .next_base
            .checked_add(blocks)
            .expect("global block namespace exhausted");
        Ok(id)
    }

    /// Look up a file by name.
    pub fn open(&self, name: &str) -> Result<FileId, FsError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }

    /// Metadata of an open file.
    pub fn meta(&self, file: FileId) -> Result<&FileMeta, FsError> {
        self.files.get(file.index()).ok_or(FsError::BadFile)
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Submit a read of `block` within `file` at time `now`. `Ok(Some)`
    /// when the request started service immediately; `Ok(None)` when it
    /// queued behind other work on its disk.
    pub fn read(
        &mut self,
        now: SimTime,
        file: FileId,
        block: BlockId,
        kind: FetchKind,
        initiator: ProcId,
    ) -> Result<Option<FsStarted>, FsError> {
        let meta = self.files.get(file.index()).ok_or(FsError::BadFile)?;
        if !meta.contains_block(block.0) {
            return Err(FsError::OutOfRange {
                block: block.0,
                len: meta.blocks,
            });
        }
        // Submit under the file's global block number so completions can be
        // attributed; pre-place here so the subsystem's own layout is
        // irrelevant.
        let global = BlockId(meta.base + block.0);
        let placement = meta.layout.place(block);
        let started = self
            .disks
            .read_placed(now, global, placement, kind, initiator);
        Ok(started.map(|s| FsStarted {
            disk: s.disk,
            file,
            block,
            completion: s.completion,
        }))
    }

    /// The in-flight request on `disk` finished at `now`. Returns the
    /// finished `(file, block)` and, if queued work started, the next
    /// request's completion time.
    pub fn complete(&mut self, disk: DiskId, now: SimTime) -> (FsCompleted, Option<FsStarted>) {
        let (global, next) = self.disks.complete(disk, now);
        let completed = self.attribute(global);
        (
            completed,
            next.map(|s| {
                let attributed = self.attribute(s.block);
                FsStarted {
                    disk: s.disk,
                    file: attributed.file,
                    block: attributed.block,
                    completion: s.completion,
                }
            }),
        )
    }

    /// Map a global block number back to its file.
    fn attribute(&self, global: BlockId) -> FsCompleted {
        let pos = self
            .bases
            .partition_point(|&(base, _)| base <= global.0)
            .checked_sub(1)
            .expect("completion for an unallocated block");
        let (base, file) = self.bases[pos];
        FsCompleted {
            file,
            block: BlockId(global.0 - base),
        }
    }

    /// The underlying disk subsystem (statistics).
    pub fn disks(&self) -> &DiskSubsystem {
        &self.disks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sim::SimDuration;

    fn fs(disks: u16) -> FileSystem {
        FileSystem::new(disks, Service::paper(), Discipline::Fifo, &Rng::seeded(1))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn create_open_meta_round_trip() {
        let mut f = fs(4);
        let id = f.create("data", 100, Striping::Interleaved).unwrap();
        assert_eq!(f.open("data").unwrap(), id);
        let meta = f.meta(id).unwrap();
        assert_eq!(meta.blocks, 100);
        assert_eq!(meta.name, "data");
        assert_eq!(f.file_count(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut f = fs(2);
        f.create("x", 10, Striping::Interleaved).unwrap();
        assert_eq!(
            f.create("x", 10, Striping::Interleaved),
            Err(FsError::Exists("x".into()))
        );
        assert_eq!(f.open("y"), Err(FsError::NotFound("y".into())));
    }

    #[test]
    fn out_of_range_reads_rejected() {
        let mut f = fs(2);
        let id = f.create("x", 10, Striping::Interleaved).unwrap();
        let err = f
            .read(t(0), id, BlockId(10), FetchKind::Demand, ProcId(0))
            .unwrap_err();
        assert_eq!(err, FsError::OutOfRange { block: 10, len: 10 });
    }

    #[test]
    fn interleaved_file_reads_in_parallel() {
        let mut f = fs(4);
        let id = f.create("x", 8, Striping::Interleaved).unwrap();
        for b in 0..4 {
            let started = f
                .read(t(0), id, BlockId(b), FetchKind::Demand, ProcId(0))
                .unwrap()
                .expect("idle disks start immediately");
            assert_eq!(started.completion, t(30));
        }
    }

    #[test]
    fn contiguous_file_serializes_on_its_disk() {
        let mut f = fs(4);
        let id = f.create("x", 8, Striping::OnDisk(2)).unwrap();
        let a = f
            .read(t(0), id, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap();
        let b = f
            .read(t(0), id, BlockId(1), FetchKind::Demand, ProcId(0))
            .unwrap();
        assert!(a.is_some());
        assert!(b.is_none(), "second block queues behind the first");
        assert_eq!(a.unwrap().disk, DiskId(2));
    }

    #[test]
    fn completions_attribute_to_the_right_file() {
        let mut f = fs(2);
        let a = f.create("a", 4, Striping::Interleaved).unwrap();
        let b = f.create("b", 4, Striping::Interleaved).unwrap();
        // One block from each file on disk 0 (block 0 of each; b's stripes
        // start above a's).
        let s1 = f
            .read(t(0), a, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap()
            .unwrap();
        assert_eq!(s1.disk, DiskId(0));
        let s2 = f
            .read(t(0), b, BlockId(0), FetchKind::Demand, ProcId(1))
            .unwrap();
        assert!(s2.is_none(), "same disk: queues");
        let (done, next) = f.complete(DiskId(0), t(30));
        assert_eq!(
            done,
            FsCompleted {
                file: a,
                block: BlockId(0)
            }
        );
        let (done, _) = f.complete(DiskId(0), next.unwrap().completion);
        assert_eq!(
            done,
            FsCompleted {
                file: b,
                block: BlockId(0)
            }
        );
    }

    #[test]
    fn two_files_never_share_physical_blocks() {
        let mut f = fs(3);
        let a = f.create("a", 7, Striping::Interleaved).unwrap();
        let b = f.create("b", 5, Striping::Interleaved).unwrap();
        let mut slots = std::collections::HashSet::new();
        for (id, len) in [(a, 7u32), (b, 5u32)] {
            let meta = f.meta(id).unwrap().clone();
            for blk in 0..len {
                let p = meta.layout.place(BlockId(blk));
                assert!(slots.insert((p.disk, p.physical)), "files overlap at {p:?}");
            }
        }
    }

    #[test]
    fn bad_file_id_rejected() {
        let mut f = fs(2);
        assert_eq!(f.meta(FileId(0)).err(), Some(FsError::BadFile));
        let err = f
            .read(t(0), FileId(3), BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap_err();
        assert_eq!(err, FsError::BadFile);
    }
}
