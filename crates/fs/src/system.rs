//! The file system proper: names, metadata, allocation, and the read path
//! down to the parallel disks.
//!
//! Files are identified by name at creation/open and by [`FileId`]
//! afterwards. Each file owns a physical extent handed out by the
//! [`Allocator`]; reads map `(file, logical block)` through the file's
//! layout onto a disk and physical offset, and travel the event-driven
//! [`DiskSubsystem`] (submit now, complete later). Because several files
//! can be in flight at once, in-flight requests are tracked per disk so a
//! completion can be attributed back to its file.

use std::collections::HashMap;

use rt_disk::{
    BlockId, Contiguous, Discipline, DiskFault, DiskId, DiskSubsystem, FaultPlan, FetchKind,
    FileLayout, Interleaved, Layout, ProcId, Service,
};
use rt_sim::{Rng, SimDuration, SimTime};

use crate::alloc::{AllocError, Allocator};
use crate::file::{FileId, FileMeta, Striping};

/// Errors from file-system operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// A file with this name already exists.
    Exists(String),
    /// No file with this name.
    NotFound(String),
    /// The file id is stale or invalid.
    BadFile,
    /// The block number is outside the file.
    OutOfRange {
        /// The offending block.
        block: u32,
        /// The file's length.
        len: u32,
    },
    /// Allocation failed.
    Alloc(AllocError),
    /// Replication requires an interleaved layout.
    ReplicaUnsupported,
    /// The requested replica index exceeds the file's copy count.
    NoReplica {
        /// The offending replica index (0 = primary).
        replica: u16,
        /// Copies the file actually has beyond the primary.
        available: u16,
    },
    /// The target device's bounded queue rejected the request.
    QueueFull {
        /// The device that shed the request.
        disk: DiskId,
        /// Requests already waiting on that device.
        depth: usize,
    },
}

/// A read that started service (immediately at submit, or later when a
/// completion dispatched it from the queue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsStarted {
    /// The device serving it.
    pub disk: DiskId,
    /// The file whose block is being fetched.
    pub file: FileId,
    /// The logical block within that file.
    pub block: BlockId,
    /// What the request is for (demand, prefetch, scrub, repair).
    pub kind: FetchKind,
    /// When the I/O completes; call [`FileSystem::complete`] then.
    pub completion: SimTime,
}

/// A completed read, attributed to its file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsCompleted {
    /// The file whose block finished.
    pub file: FileId,
    /// The logical block within that file.
    pub block: BlockId,
    /// Demand fetch or prefetch.
    pub kind: FetchKind,
    /// The node that issued the request.
    pub initiator: ProcId,
    /// `Ok` on success; `Err` carries the injected fault.
    pub status: Result<(), DiskFault>,
    /// Device service time of the request (excludes queueing).
    pub service: SimDuration,
    /// When the request was submitted (response time = now − submitted).
    pub submitted: SimTime,
    /// True when the completion is `Ok` but the payload is silently
    /// corrupt (see [`rt_disk::FaultKind::Corrupt`]).
    pub corrupt: bool,
}

/// The interleaved file system over parallel independent disks.
///
/// `Clone` snapshots the whole system — devices, queues, allocator, and
/// file table — so a mid-run state can be forked and resumed independently.
#[derive(Clone)]
pub struct FileSystem {
    disks: DiskSubsystem,
    allocator: Allocator,
    files: Vec<FileMeta>,
    names: HashMap<String, FileId>,
    /// Reverse map: global block number → file. Keyed by the file's global
    /// base; found by range search over sorted bases.
    bases: Vec<(u32, FileId)>,
    next_base: u32,
}

impl FileSystem {
    /// A file system over `disk_count` devices with the given service model
    /// and queue discipline.
    pub fn new(disk_count: u16, service: Service, discipline: Discipline, rng: &Rng) -> Self {
        let disks = DiskSubsystem::new(
            disk_count,
            service,
            discipline,
            // The subsystem's layout maps *global* block numbers; each
            // file's own layout is applied before submission, so the
            // subsystem layer uses the identity interleave only for its
            // own bookkeeping. We bypass it by placing per file (see
            // `read`), so any layout works here; use the interleave.
            FileLayout::interleaved(disk_count),
            rng,
        );
        FileSystem {
            allocator: Allocator::new(disk_count),
            disks,
            files: Vec::new(),
            names: HashMap::new(),
            bases: Vec::new(),
            next_base: 0,
        }
    }

    /// The paper's machine: 20 disks, 30 ms fixed latency, FCFS.
    pub fn paper(rng: &Rng) -> Self {
        FileSystem::new(20, Service::paper(), Discipline::Fifo, rng)
    }

    /// Create a file of `blocks` blocks with the given striping; returns
    /// its id. Names are unique.
    pub fn create(
        &mut self,
        name: &str,
        blocks: u32,
        striping: Striping,
    ) -> Result<FileId, FsError> {
        self.create_replicated(name, blocks, striping, 0)
    }

    /// Create a file with `replicas` extra copies beyond the primary.
    /// Each copy is a *rotated* interleave over its own extent: block `i`
    /// of replica `r` lives on disk `(i + r) mod D`, so every copy of a
    /// block sits on a different device and a redirected read dodges the
    /// failed one. Replication requires interleaved striping.
    pub fn create_replicated(
        &mut self,
        name: &str,
        blocks: u32,
        striping: Striping,
        replicas: u16,
    ) -> Result<FileId, FsError> {
        if self.names.contains_key(name) {
            return Err(FsError::Exists(name.to_string()));
        }
        if replicas > 0 && striping != Striping::Interleaved {
            return Err(FsError::ReplicaUnsupported);
        }
        let layout = match striping {
            Striping::Interleaved => {
                let base = self
                    .allocator
                    .alloc_interleaved(blocks)
                    .map_err(FsError::Alloc)?;
                FileLayout::Interleaved(Interleaved::new(self.allocator.disks(), base))
            }
            Striping::OnDisk(d) => {
                let base = self
                    .allocator
                    .alloc_contiguous(DiskId(d), blocks)
                    .map_err(FsError::Alloc)?;
                FileLayout::Contiguous(Contiguous::new(DiskId(d), base))
            }
        };
        let replica_layouts = (1..=replicas)
            .map(|r| {
                let base = self
                    .allocator
                    .alloc_interleaved(blocks)
                    .map_err(FsError::Alloc)?;
                Ok(FileLayout::Interleaved(Interleaved::with_shift(
                    self.allocator.disks(),
                    base,
                    r,
                )))
            })
            .collect::<Result<Vec<_>, FsError>>()?;
        let id = FileId(self.files.len() as u32);
        self.files.push(FileMeta {
            name: name.to_string(),
            blocks,
            striping,
            layout,
            replicas: replica_layouts,
            base: self.next_base,
        });
        self.names.insert(name.to_string(), id);
        self.bases.push((self.next_base, id));
        self.next_base = self
            .next_base
            .checked_add(blocks)
            .expect("global block namespace exhausted");
        Ok(id)
    }

    /// Look up a file by name.
    pub fn open(&self, name: &str) -> Result<FileId, FsError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }

    /// Metadata of an open file.
    pub fn meta(&self, file: FileId) -> Result<&FileMeta, FsError> {
        self.files.get(file.index()).ok_or(FsError::BadFile)
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Submit a read of `block` within `file` at time `now`. `Ok(Some)`
    /// when the request started service immediately; `Ok(None)` when it
    /// queued behind other work on its disk.
    pub fn read(
        &mut self,
        now: SimTime,
        file: FileId,
        block: BlockId,
        kind: FetchKind,
        initiator: ProcId,
    ) -> Result<Option<FsStarted>, FsError> {
        self.read_replica(now, file, block, 0, kind, initiator)
    }

    /// Submit a read against a specific copy: `replica` 0 is the primary
    /// layout, `1..` the rotated copies. All copies share the block's
    /// global number, so completions attribute identically regardless of
    /// which copy served them.
    pub fn read_replica(
        &mut self,
        now: SimTime,
        file: FileId,
        block: BlockId,
        replica: u16,
        kind: FetchKind,
        initiator: ProcId,
    ) -> Result<Option<FsStarted>, FsError> {
        let meta = self.files.get(file.index()).ok_or(FsError::BadFile)?;
        if !meta.contains_block(block.0) {
            return Err(FsError::OutOfRange {
                block: block.0,
                len: meta.blocks,
            });
        }
        let layout = if replica == 0 {
            &meta.layout
        } else {
            meta.replicas
                .get(replica as usize - 1)
                .ok_or(FsError::NoReplica {
                    replica,
                    available: meta.replicas.len() as u16,
                })?
        };
        // Submit under the file's global block number so completions can be
        // attributed; pre-place here so the subsystem's own layout is
        // irrelevant.
        let global = BlockId(meta.base + block.0);
        let placement = layout.place(block);
        let started = self
            .disks
            .read_placed(now, global, placement, kind, initiator)
            .map_err(|full| FsError::QueueFull {
                disk: placement.disk,
                depth: full.depth,
            })?;
        Ok(started.map(|s| FsStarted {
            disk: s.disk,
            file,
            block,
            kind: s.kind,
            completion: s.completion,
        }))
    }

    /// Remove the first *queued* prefetch on `disk` whose attributed
    /// `(file, block)` the `keep` predicate does not protect, and attribute
    /// it back to its file. The in-service request is never cancelled.
    /// Used by the admission layer to make room for a demand read while
    /// sparing prefetches a reader already waits on.
    pub fn cancel_queued_prefetch(
        &mut self,
        disk: DiskId,
        now: SimTime,
        keep: impl Fn(FileId, BlockId) -> bool,
    ) -> Option<(FileId, BlockId, ProcId)> {
        let bases = &self.bases;
        let attribute = |global: BlockId| {
            let pos = bases
                .partition_point(|&(base, _)| base <= global.0)
                .checked_sub(1)
                .expect("queued request for an unallocated block");
            let (base, file) = bases[pos];
            (file, BlockId(global.0 - base))
        };
        let req = self.disks.cancel_queued(disk, now, |r| {
            if r.kind != FetchKind::Prefetch {
                return false;
            }
            let (file, block) = attribute(r.block);
            !keep(file, block)
        })?;
        let (file, block) = attribute(req.block);
        Some((file, block, req.initiator))
    }

    /// Remove the first *queued* demand fetch of `file`'s `block` on
    /// `disk`, returning its initiator. The in-service request is never
    /// cancelled. Used by the tail-tolerance layer to reap the losing
    /// half of a hedged pair while it still waits in a queue.
    pub fn cancel_queued_demand(
        &mut self,
        disk: DiskId,
        now: SimTime,
        file: FileId,
        block: BlockId,
    ) -> Option<ProcId> {
        let bases = &self.bases;
        let attribute = |global: BlockId| {
            let pos = bases
                .partition_point(|&(base, _)| base <= global.0)
                .checked_sub(1)
                .expect("queued request for an unallocated block");
            let (base, f) = bases[pos];
            (f, BlockId(global.0 - base))
        };
        let req = self.disks.cancel_queued(disk, now, |r| {
            r.kind == FetchKind::Demand && attribute(r.block) == (file, block)
        })?;
        Some(req.initiator)
    }

    /// Bound every device's queue to `limit` waiting requests (`None`
    /// restores the unbounded default).
    pub fn set_queue_limit(&mut self, limit: Option<usize>) {
        self.disks.set_queue_limit(limit);
    }

    /// Copies of `file` beyond the primary.
    pub fn replica_count(&self, file: FileId) -> u16 {
        self.files
            .get(file.index())
            .map_or(0, |m| m.replicas.len() as u16)
    }

    /// Which device serves `block` of `file` through copy `replica`
    /// (0 = primary). Used by upper layers to steer around degraded
    /// devices without submitting anything.
    pub fn placement_disk(&self, file: FileId, block: BlockId, replica: u16) -> Option<DiskId> {
        let meta = self.files.get(file.index())?;
        let layout = if replica == 0 {
            &meta.layout
        } else {
            meta.replicas.get(replica as usize - 1)?
        };
        Some(layout.place(block).disk)
    }

    /// Install a fault schedule on the underlying devices (see
    /// [`DiskSubsystem::set_fault_plan`]).
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, rng: &Rng) {
        self.disks.set_fault_plan(plan, rng);
    }

    /// The in-flight request on `disk` finished at `now`. Returns the
    /// finished `(file, block)` and, if queued work started, the next
    /// request's completion time.
    pub fn complete(&mut self, disk: DiskId, now: SimTime) -> (FsCompleted, Option<FsStarted>) {
        let (done, next) = self.disks.complete(disk, now);
        let (file, block) = self.attribute(done.block);
        let completed = FsCompleted {
            file,
            block,
            kind: done.kind,
            initiator: done.initiator,
            status: done.status,
            service: done.service,
            submitted: done.submitted,
            corrupt: done.corrupt,
        };
        (
            completed,
            next.map(|s| {
                let (file, block) = self.attribute(s.block);
                FsStarted {
                    disk: s.disk,
                    file,
                    block,
                    kind: s.kind,
                    completion: s.completion,
                }
            }),
        )
    }

    /// Map a global block number back to its file and logical block.
    fn attribute(&self, global: BlockId) -> (FileId, BlockId) {
        let pos = self
            .bases
            .partition_point(|&(base, _)| base <= global.0)
            .checked_sub(1)
            .expect("completion for an unallocated block");
        let (base, file) = self.bases[pos];
        (file, BlockId(global.0 - base))
    }

    /// The underlying disk subsystem (statistics).
    pub fn disks(&self) -> &DiskSubsystem {
        &self.disks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sim::SimDuration;

    fn fs(disks: u16) -> FileSystem {
        FileSystem::new(disks, Service::paper(), Discipline::Fifo, &Rng::seeded(1))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn create_open_meta_round_trip() {
        let mut f = fs(4);
        let id = f.create("data", 100, Striping::Interleaved).unwrap();
        assert_eq!(f.open("data").unwrap(), id);
        let meta = f.meta(id).unwrap();
        assert_eq!(meta.blocks, 100);
        assert_eq!(meta.name, "data");
        assert_eq!(f.file_count(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut f = fs(2);
        f.create("x", 10, Striping::Interleaved).unwrap();
        assert_eq!(
            f.create("x", 10, Striping::Interleaved),
            Err(FsError::Exists("x".into()))
        );
        assert_eq!(f.open("y"), Err(FsError::NotFound("y".into())));
    }

    #[test]
    fn out_of_range_reads_rejected() {
        let mut f = fs(2);
        let id = f.create("x", 10, Striping::Interleaved).unwrap();
        let err = f
            .read(t(0), id, BlockId(10), FetchKind::Demand, ProcId(0))
            .unwrap_err();
        assert_eq!(err, FsError::OutOfRange { block: 10, len: 10 });
    }

    #[test]
    fn interleaved_file_reads_in_parallel() {
        let mut f = fs(4);
        let id = f.create("x", 8, Striping::Interleaved).unwrap();
        for b in 0..4 {
            let started = f
                .read(t(0), id, BlockId(b), FetchKind::Demand, ProcId(0))
                .unwrap()
                .expect("idle disks start immediately");
            assert_eq!(started.completion, t(30));
        }
    }

    #[test]
    fn contiguous_file_serializes_on_its_disk() {
        let mut f = fs(4);
        let id = f.create("x", 8, Striping::OnDisk(2)).unwrap();
        let a = f
            .read(t(0), id, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap();
        let b = f
            .read(t(0), id, BlockId(1), FetchKind::Demand, ProcId(0))
            .unwrap();
        assert!(a.is_some());
        assert!(b.is_none(), "second block queues behind the first");
        assert_eq!(a.unwrap().disk, DiskId(2));
    }

    #[test]
    fn completions_attribute_to_the_right_file() {
        let mut f = fs(2);
        let a = f.create("a", 4, Striping::Interleaved).unwrap();
        let b = f.create("b", 4, Striping::Interleaved).unwrap();
        // One block from each file on disk 0 (block 0 of each; b's stripes
        // start above a's).
        let s1 = f
            .read(t(0), a, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap()
            .unwrap();
        assert_eq!(s1.disk, DiskId(0));
        let s2 = f
            .read(t(0), b, BlockId(0), FetchKind::Demand, ProcId(1))
            .unwrap();
        assert!(s2.is_none(), "same disk: queues");
        let (done, next) = f.complete(DiskId(0), t(30));
        assert_eq!((done.file, done.block), (a, BlockId(0)));
        assert_eq!(done.status, Ok(()));
        assert_eq!(done.kind, FetchKind::Demand);
        let (done, _) = f.complete(DiskId(0), next.unwrap().completion);
        assert_eq!((done.file, done.block), (b, BlockId(0)));
    }

    #[test]
    fn replicas_rotate_and_never_collide() {
        let mut f = fs(4);
        let id = f
            .create_replicated("x", 8, Striping::Interleaved, 2)
            .unwrap();
        assert_eq!(f.replica_count(id), 2);
        for blk in 0..8u32 {
            let primary = f.placement_disk(id, BlockId(blk), 0).unwrap();
            let r1 = f.placement_disk(id, BlockId(blk), 1).unwrap();
            let r2 = f.placement_disk(id, BlockId(blk), 2).unwrap();
            assert_ne!(primary, r1);
            assert_ne!(primary, r2);
            assert_ne!(r1, r2);
        }
        // A replica read attributes to the same (file, block) as the
        // primary and lands on the rotated device.
        let s = f
            .read_replica(t(0), id, BlockId(0), 1, FetchKind::Demand, ProcId(0))
            .unwrap()
            .unwrap();
        assert_eq!(s.disk, DiskId(1));
        let (done, _) = f.complete(s.disk, s.completion);
        assert_eq!((done.file, done.block), (id, BlockId(0)));
        // Out-of-range replica indexes are rejected.
        assert_eq!(
            f.read_replica(t(0), id, BlockId(0), 3, FetchKind::Demand, ProcId(0)),
            Err(FsError::NoReplica {
                replica: 3,
                available: 2
            })
        );
    }

    #[test]
    fn replication_requires_interleaving() {
        let mut f = fs(4);
        assert_eq!(
            f.create_replicated("x", 8, Striping::OnDisk(1), 1),
            Err(FsError::ReplicaUnsupported)
        );
    }

    #[test]
    fn fault_plan_surfaces_in_completions() {
        use rt_disk::FaultPlan;
        let mut f = fs(2);
        let id = f.create("x", 4, Striping::Interleaved).unwrap();
        let plan = FaultPlan::none().outage(DiskId(1), t(0), None);
        f.set_fault_plan(&plan, &Rng::seeded(5));
        let s = f
            .read(t(0), id, BlockId(1), FetchKind::Demand, ProcId(0))
            .unwrap()
            .unwrap();
        let (done, _) = f.complete(s.disk, s.completion);
        assert!(done.status.is_err());
        assert_eq!((done.file, done.block), (id, BlockId(1)));
        assert_eq!(f.disks().total_errors(), 1);
    }

    #[test]
    fn two_files_never_share_physical_blocks() {
        let mut f = fs(3);
        let a = f.create("a", 7, Striping::Interleaved).unwrap();
        let b = f.create("b", 5, Striping::Interleaved).unwrap();
        let mut slots = std::collections::HashSet::new();
        for (id, len) in [(a, 7u32), (b, 5u32)] {
            let meta = f.meta(id).unwrap().clone();
            for blk in 0..len {
                let p = meta.layout.place(BlockId(blk));
                assert!(slots.insert((p.disk, p.physical)), "files overlap at {p:?}");
            }
        }
    }

    #[test]
    fn bounded_queue_surfaces_and_cancel_frees_room() {
        let mut f = fs(2);
        let id = f.create("x", 8, Striping::OnDisk(0)).unwrap();
        f.set_queue_limit(Some(1));
        // One in service, one queued prefetch, then the queue is full.
        f.read(t(0), id, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap();
        f.read(t(0), id, BlockId(1), FetchKind::Prefetch, ProcId(0))
            .unwrap();
        assert_eq!(
            f.read(t(0), id, BlockId(2), FetchKind::Demand, ProcId(1)),
            Err(FsError::QueueFull {
                disk: DiskId(0),
                depth: 1
            })
        );
        // A protected prefetch is spared; an unprotected one is shed,
        // attributed back to the file, and makes room for the demand read.
        assert!(f
            .cancel_queued_prefetch(DiskId(0), t(0), |_, b| b == BlockId(1))
            .is_none());
        let (file, block, initiator) = f
            .cancel_queued_prefetch(DiskId(0), t(0), |_, _| false)
            .unwrap();
        assert_eq!((file, block, initiator), (id, BlockId(1), ProcId(0)));
        assert!(f
            .cancel_queued_prefetch(DiskId(0), t(0), |_, _| false)
            .is_none());
        assert!(f
            .read(t(0), id, BlockId(2), FetchKind::Demand, ProcId(1))
            .unwrap()
            .is_none());
    }

    #[test]
    fn bad_file_id_rejected() {
        let mut f = fs(2);
        assert_eq!(f.meta(FileId(0)).err(), Some(FsError::BadFile));
        let err = f
            .read(t(0), FileId(3), BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap_err();
        assert_eq!(err, FsError::BadFile);
    }
}
