//! # rt-fs — the interleaved file system
//!
//! The file-system substrate of the RAPID Transit reproduction, patterned
//! on the Bridge / BBN RAMFile systems the testbed derives from: named
//! files, per-file striping (round-robin interleaved over all disks, or
//! contiguous on one disk), a high-water-mark allocator that keeps files'
//! physical extents disjoint, and an event-driven read path down to the
//! parallel independent disks.
//!
//! ```
//! use rt_fs::{FileSystem, Striping};
//! use rt_disk::{BlockId, FetchKind, ProcId};
//! use rt_sim::{Rng, SimTime, SimDuration};
//!
//! let mut fs = FileSystem::paper(&Rng::seeded(1));
//! let file = fs.create("trace.dat", 2000, Striping::Interleaved).unwrap();
//! // Block 0 of an interleaved file starts immediately on disk 0.
//! let started = fs
//!     .read(SimTime::ZERO, file, BlockId(0), FetchKind::Demand, ProcId(0))
//!     .unwrap()
//!     .expect("idle disk");
//! assert_eq!(started.completion, SimTime::ZERO + SimDuration::from_millis(30));
//! let (done, _) = fs.complete(started.disk, started.completion);
//! assert_eq!(done.file, file);
//! assert_eq!(done.block, BlockId(0));
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod file;
pub mod system;

pub use alloc::{AllocError, Allocator};
pub use file::{FileId, FileMeta, Striping};
pub use system::{FileSystem, FsCompleted, FsError, FsStarted};
