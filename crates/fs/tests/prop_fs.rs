//! Property tests for the file system: arbitrary mixes of interleaved and
//! contiguous files never overlap physically, reads map and attribute
//! correctly, and the allocator conserves space.

use proptest::prelude::*;

use rt_disk::{BlockId, Discipline, FetchKind, Layout, ProcId, Service};
use rt_fs::{FileSystem, FsError, Striping};
use rt_sim::{Rng, SimTime};

#[derive(Clone, Debug)]
struct FileSpec {
    blocks: u32,
    striping: Striping,
}

fn file_strategy(disks: u16) -> impl Strategy<Value = FileSpec> {
    (1u32..64, prop::option::of(0..disks)).prop_map(|(blocks, on_disk)| FileSpec {
        blocks,
        striping: match on_disk {
            None => Striping::Interleaved,
            Some(d) => Striping::OnDisk(d),
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// No two blocks of any files ever share a physical slot.
    #[test]
    fn files_never_overlap(
        disks in 1u16..8,
        specs in prop::collection::vec(file_strategy(8), 1..12),
    ) {
        let mut fs = FileSystem::new(disks, Service::paper(), Discipline::Fifo, &Rng::seeded(1));
        let mut slots = std::collections::HashSet::new();
        for (i, spec) in specs.iter().enumerate() {
            let striping = match spec.striping {
                Striping::OnDisk(d) if d >= disks => Striping::OnDisk(d % disks),
                s => s,
            };
            let id = fs.create(&format!("f{i}"), spec.blocks, striping).unwrap();
            let meta = fs.meta(id).unwrap().clone();
            for b in 0..spec.blocks {
                let p = meta.layout.place(BlockId(b));
                prop_assert!(p.disk.index() < disks as usize);
                prop_assert!(
                    slots.insert((p.disk, p.physical)),
                    "file {i} block {b} collides at {p:?}"
                );
            }
        }
    }

    /// Submitting one read per file and draining the disks attributes every
    /// completion to the right (file, block).
    #[test]
    fn completions_attribute_correctly(
        disks in 1u16..6,
        specs in prop::collection::vec(file_strategy(6), 1..8),
        block_picks in prop::collection::vec(any::<u32>(), 8),
    ) {
        let mut fs = FileSystem::new(disks, Service::paper(), Discipline::Fifo, &Rng::seeded(2));
        let mut expected = std::collections::HashSet::new();
        let mut pending: Vec<(rt_disk::DiskId, SimTime)> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let striping = match spec.striping {
                Striping::OnDisk(d) if d >= disks => Striping::OnDisk(d % disks),
                s => s,
            };
            let id = fs.create(&format!("f{i}"), spec.blocks, striping).unwrap();
            let block = BlockId(block_picks[i % block_picks.len()] % spec.blocks);
            expected.insert((id, block));
            if let Some(s) = fs
                .read(SimTime::ZERO, id, block, FetchKind::Demand, ProcId(0))
                .unwrap()
            {
                pending.push((s.disk, s.completion));
            }
        }
        // Drain: completions may start queued requests.
        let mut got = std::collections::HashSet::new();
        while let Some((disk, at)) = pending.pop() {
            let (done, next) = fs.complete(disk, at);
            got.insert((done.file, done.block));
            if let Some(s) = next {
                pending.push((s.disk, s.completion));
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// Out-of-range reads are rejected for every file shape.
    #[test]
    fn out_of_range_rejected(disks in 1u16..6, blocks in 1u32..64) {
        let mut fs = FileSystem::new(disks, Service::paper(), Discipline::Fifo, &Rng::seeded(3));
        let id = fs.create("f", blocks, Striping::Interleaved).unwrap();
        let err = fs
            .read(SimTime::ZERO, id, BlockId(blocks), FetchKind::Demand, ProcId(0))
            .unwrap_err();
        prop_assert_eq!(err, FsError::OutOfRange { block: blocks, len: blocks });
    }
}
